"""Batched crossbar solving: ``solve_batch`` vs the point-wise path.

The batched evaluation stack (DESIGN.md S22) rests on one contract:
``solve_batch`` returns results *bit-identical* to looping
``CrossbarNetwork.solve`` member by member, for any mix of wire
parameters, fault masks and per-member iteration counts.  These tests
pin that contract exactly (``==`` on the raw arrays), plus the looser
1e-12 (linear) / 1e-9 (nonlinear) tolerance checks the acceptance
criteria phrase it in — the exact assertions subsume them, but keeping
both documents which one is the load-bearing guarantee.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.faults.models import sample_fault_mask
from repro.spice.solver import CrossbarNetwork, solve_batch
from repro.tech import get_memristor_model

SEG = 0.25
SENSE = 1e3


@pytest.fixture(scope="module")
def device():
    return get_memristor_model("RRAM")


def _random_batch(device, count, size, seed, fault_rate=0.0,
                  fault_mode="stuck_mixed"):
    """``count`` independent same-shape networks plus their inputs."""
    rng = np.random.default_rng(seed)
    networks, inputs = [], []
    for _ in range(count):
        resistances = rng.uniform(1e5, 1e6, size=(size, size))
        mask = None
        if fault_rate > 0:
            mask = sample_fault_mask(size, size, fault_rate, rng,
                                     mode=fault_mode)
        networks.append(CrossbarNetwork(
            resistances, SEG, SENSE, device=device, fault_mask=mask,
        ))
        inputs.append(rng.uniform(0.1, 1.0, size=size))
    return networks, np.stack(inputs)


def _assert_members_bit_identical(batch, networks, inputs):
    """Every member equals its point-wise solve, bit for bit."""
    for index, network in enumerate(networks):
        single = network.solve(inputs[index])
        assert np.array_equal(batch.output_voltages[index],
                              single.output_voltages)
        assert np.array_equal(batch.cell_voltages[index],
                              single.cell_voltages)
        assert np.array_equal(batch.cell_currents[index],
                              single.cell_currents)
        assert np.array_equal(batch.input_currents[index],
                              single.input_currents)
        assert batch.total_power[index] == single.total_power
        assert batch.iterations[index] == single.iterations
        assert bool(batch.converged[index]) == single.converged


class TestLinearBatch:
    def test_bit_identical_to_looped_solve(self):
        networks, inputs = _random_batch(None, 7, 12, seed=21)
        batch = solve_batch(networks, inputs)
        assert len(batch) == 7
        assert batch.failed is None
        _assert_members_bit_identical(batch, networks, inputs)

    def test_within_linear_tolerance(self):
        """The acceptance-criteria phrasing: agreement to 1e-12."""
        networks, inputs = _random_batch(None, 5, 16, seed=22)
        batch = solve_batch(networks, inputs)
        for index, network in enumerate(networks):
            single = network.solve(inputs[index])
            np.testing.assert_allclose(
                batch.output_voltages[index], single.output_voltages,
                rtol=1e-12, atol=0,
            )

    def test_matches_solve_many(self):
        """``solve_many`` (one net, K inputs) vs the general batch."""
        networks, inputs = _random_batch(None, 4, 10, seed=23)
        network = networks[0]
        many = network.solve_many(inputs)
        batch = solve_batch([network] * len(inputs), inputs)
        assert np.array_equal(many.output_voltages,
                              batch.output_voltages)
        assert np.array_equal(many.iterations, batch.iterations)

    def test_getitem_recovers_solution(self):
        networks, inputs = _random_batch(None, 3, 8, seed=24)
        batch = solve_batch(networks, inputs)
        single = batch[1]
        assert np.array_equal(single.output_voltages,
                              batch.output_voltages[1])
        assert single.converged


class TestNonlinearBatch:
    def test_bit_identical_to_looped_solve(self, device):
        networks, inputs = _random_batch(device, 6, 12, seed=31)
        batch = solve_batch(networks, inputs)
        _assert_members_bit_identical(batch, networks, inputs)

    def test_within_nonlinear_tolerance(self, device):
        """The acceptance-criteria phrasing: agreement to 1e-9."""
        networks, inputs = _random_batch(device, 4, 16, seed=32)
        batch = solve_batch(networks, inputs)
        for index, network in enumerate(networks):
            single = network.solve(inputs[index])
            np.testing.assert_allclose(
                batch.output_voltages[index], single.output_voltages,
                rtol=1e-9, atol=0,
            )

    def test_heterogeneous_iteration_counts(self, device):
        """Members retiring on different rounds stay bit-identical.

        The batched fixed-point loop keeps late members iterating after
        early ones converge; an early member's values must not be
        perturbed by the extra rounds run for the stragglers.
        """
        networks, inputs = _random_batch(device, 12, 16, seed=35)
        batch = solve_batch(networks, inputs)
        assert len(set(batch.iterations.tolist())) > 1
        _assert_members_bit_identical(batch, networks, inputs)

    def test_fault_masks_bit_identical(self, device):
        """Masked and unmasked members coexist in one batch."""
        masked, inputs_a = _random_batch(device, 4, 10, seed=34,
                                         fault_rate=0.1)
        clean, inputs_b = _random_batch(device, 2, 10, seed=35)
        networks = masked + clean
        inputs = np.concatenate([inputs_a, inputs_b])
        batch = solve_batch(networks, inputs)
        _assert_members_bit_identical(batch, networks, inputs)

    def test_solve_many_nonlinear_routes_through_batch(self, device):
        rng = np.random.default_rng(36)
        resistances = rng.uniform(1e5, 1e6, size=(10, 10))
        network = CrossbarNetwork(resistances, SEG, SENSE, device=device)
        inputs = rng.uniform(0.1, 1.0, size=(5, 10))
        many = network.solve_many(inputs)
        for index in range(5):
            single = network.solve(inputs[index])
            assert np.array_equal(many.output_voltages[index],
                                  single.output_voltages)


class TestSingularHandling:
    # Seed 1 at 25% line_open on 8x8 yields a mixed batch: members
    # [1, 3, 4, 5] singular, [0, 2] solvable (pinned by the assertions).
    def _mixed_batch(self, device):
        return _random_batch(device, 6, 8, seed=1, fault_rate=0.25,
                             fault_mode="line_open")

    def test_raise_mode_matches_pointwise(self, device):
        networks, inputs = self._mixed_batch(device)
        with pytest.raises(SolverError):
            solve_batch(networks, inputs)

    def test_mark_mode_flags_exactly_the_singular_members(self, device):
        networks, inputs = self._mixed_batch(device)
        expected = []
        for index, network in enumerate(networks):
            try:
                network.solve(inputs[index])
                expected.append(False)
            except SolverError:
                expected.append(True)
        assert any(expected) and not all(expected)  # genuinely mixed
        batch = solve_batch(networks, inputs, on_singular="mark")
        assert batch.failed.tolist() == expected
        for index, failed in enumerate(expected):
            if failed:
                assert not batch.converged[index]
                assert np.isnan(batch.output_voltages[index]).all()
            else:
                single = networks[index].solve(inputs[index])
                assert np.array_equal(batch.output_voltages[index],
                                      single.output_voltages)

    def test_all_solvable_mark_mode_reports_no_failures(self, device):
        networks, inputs = _random_batch(device, 3, 8, seed=41)
        batch = solve_batch(networks, inputs, on_singular="mark")
        assert not batch.failed.any()
        assert batch.converged.all()


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(SolverError):
            solve_batch([], np.zeros((0, 4)))

    def test_shape_mismatch_rejected(self, device):
        a, _ = _random_batch(device, 1, 8, seed=51)
        b, _ = _random_batch(device, 1, 10, seed=52)
        with pytest.raises(SolverError):
            solve_batch(a + b, np.ones((2, 8)))

    def test_device_mismatch_rejected(self, device):
        nonlinear, _ = _random_batch(device, 1, 8, seed=53)
        linear, _ = _random_batch(None, 1, 8, seed=54)
        with pytest.raises(SolverError):
            solve_batch(nonlinear + linear, np.ones((2, 8)))

    def test_inputs_shape_enforced(self, device):
        networks, inputs = _random_batch(device, 3, 8, seed=55)
        with pytest.raises(SolverError):
            solve_batch(networks, inputs[:2])  # batch-size mismatch
        with pytest.raises(SolverError):
            solve_batch(networks, inputs[0])  # missing batch axis

    def test_bad_on_singular_rejected(self, device):
        networks, inputs = _random_batch(device, 2, 8, seed=56)
        with pytest.raises(SolverError):
            solve_batch(networks, inputs, on_singular="ignore")
