"""Design comparison utility and network describe()."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.compare import compare_designs, relative_to
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import validation_mlp, vgg16


@pytest.fixture
def designs():
    network = validation_mlp()
    base = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return {
        "parallel": Accelerator(base, network),
        "serial": Accelerator(
            base.replace(parallelism_degree=1), network
        ),
    }


class TestCompare:
    def test_one_column_per_design(self, designs):
        text = compare_designs(designs)
        header = text.splitlines()[0]
        assert "parallel" in header and "serial" in header
        assert "area (mm^2)" in text
        assert "crossbars" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            compare_designs({})


class TestRelative:
    def test_baseline_column_is_unity(self, designs):
        text = relative_to(designs, baseline="parallel")
        area_row = [l for l in text.splitlines() if "area" in l][0]
        assert "1.000x" in area_row

    def test_ratios_reflect_known_ordering(self, designs):
        """Serial reads save area relative to the parallel design."""
        text = relative_to(designs, baseline="parallel")
        area_row = [l for l in text.splitlines() if "area" in l][0]
        serial_ratio = float(area_row.split()[-1].rstrip("x"))
        assert serial_ratio < 1.0

    def test_unknown_baseline_rejected(self, designs):
        with pytest.raises(ConfigError):
            relative_to(designs, baseline="missing")


class TestDescribe:
    def test_describe_lists_every_layer(self):
        text = validation_mlp().describe()
        assert "validation-mlp-128" in text
        assert text.count("fc") >= 2
        assert "128x128" in text

    def test_describe_vgg_totals(self):
        text = vgg16().describe()
        assert "16 layers" in text
        assert "conv" in text and "fc" in text
