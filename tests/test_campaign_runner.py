"""End-to-end campaigns: byte-identity, interruption, resume."""

import json

import pytest

from repro.campaign.config import CampaignConfig
from repro.campaign.runner import run_campaign_config
from repro.errors import JobCancelled
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics

CAMPAIGN = {
    "version": 0,
    "name": "resume-study",
    "execution": {
        "numCPUs": 1,
        "numRuns": 2,
        "chunk_size": 1,
        "min_sweep_for_parallel": 2,
    },
    "settings": {
        "regular": {
            "kind": "montecarlo",
            "montecarlo": {"trials": 2, "seed": 3, "size": 8},
        },
        "combination": {"montecarlo.sigma": [0.05, 0.1]},
    },
    "post": ["summary"],
}


def config(**execution_overrides):
    doc = json.loads(json.dumps(CAMPAIGN))
    doc["execution"].update(execution_overrides)
    return CampaignConfig.from_dict(doc)


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted serial report — the byte-identity reference."""
    return run_campaign_config(config()).to_json()


class TestByteIdentity:
    def test_runs_are_deterministic(self, baseline):
        assert run_campaign_config(config()).to_json() == baseline

    def test_parallel_matches_serial(self, baseline):
        run = run_campaign_config(config(), jobs=2)
        assert run.to_json() == baseline

    def test_file_level_numcpus_matches_serial(self, baseline):
        run = run_campaign_config(config(numCPUs=2))
        assert run.to_json() == baseline

    def test_report_shape(self, baseline):
        doc = json.loads(baseline)
        assert doc["schema"] == "repro-campaign-v1"
        assert doc["name"] == "resume-study"
        assert [u["stage"] for u in doc["units"]] == [
            "unit-000-run-0", "unit-000-run-1",
            "unit-001-run-0", "unit-001-run-1",
        ]
        rows = doc["post"]["summary"]["rows"]
        assert [r["metric"] for r in rows] == ["mean_abs_error"] * 4


class _CancelAtDone:
    """Cooperative interruption once ``done`` reaches a threshold.

    The engine checks ``should_cancel`` at chunk boundaries and the
    DAG runner at stage boundaries; triggering on the campaign-wide
    ``done`` count makes the kill point deterministic for any worker
    count.  With 2 jobs per unit, a threshold of 3 interrupts *inside*
    the second unit after the first unit completed — the mid-stage
    kill the resume machinery exists for.
    """

    def __init__(self, done_threshold):
        self.done_threshold = done_threshold
        self.fired = False

    def progress(self, done, total):
        if done >= self.done_threshold:
            self.fired = True

    def should_cancel(self):
        return self.fired


def _interrupt_then_resume(cache, jobs, baseline, done_threshold=3):
    interrupter = _CancelAtDone(done_threshold)
    with pytest.raises(JobCancelled):
        run_campaign_config(
            config(), jobs=jobs, cache=cache,
            progress=interrupter.progress,
            should_cancel=interrupter.should_cancel,
        )

    metrics = RunMetrics()
    resumed = run_campaign_config(
        config(), jobs=jobs, cache=cache, metrics=metrics,
    )
    assert resumed.to_json() == baseline
    return resumed, metrics


class TestInterruptionAndResume:
    def test_serial_resume_is_byte_identical(self, tmp_path, baseline):
        cache = ResultCache(tmp_path / "cache")
        resumed, _metrics = _interrupt_then_resume(cache, None, baseline)
        stats = resumed.stage_stats
        # The first unit completed before the kill: it replays from
        # the sqlite stage cache with zero engine work.  The unit the
        # kill landed in lost its in-flight chunks (the engine only
        # persists completed runs) and re-executes.
        assert stats["unit-000-run-0"]["resumed"] is True
        assert stats["unit-000-run-0"]["jobs"] == 0
        assert stats["unit-000-run-1"]["resumed"] is False
        assert stats["unit-000-run-1"]["jobs"] == 2

    def test_parallel_resume_is_byte_identical(self, tmp_path, baseline):
        cache = ResultCache(tmp_path / "cache")
        resumed, _metrics = _interrupt_then_resume(cache, 2, baseline)
        stats = resumed.stage_stats
        assert stats["unit-000-run-0"]["resumed"] is True
        assert stats["unit-000-run-0"]["jobs"] == 0

    def test_interruption_at_a_stage_boundary(self, tmp_path, baseline):
        # Threshold 2 = exactly the first unit's job count: the flag
        # trips on its final chunk report, the stage still completes
        # (and is cached), and the runner cancels at the boundary
        # before the second unit starts.
        cache = ResultCache(tmp_path / "cache")
        resumed, _metrics = _interrupt_then_resume(
            cache, None, baseline, done_threshold=2
        )
        assert resumed.stage_stats["unit-000-run-0"]["resumed"] is True

    def test_fully_cached_rerun_does_no_engine_work(self, tmp_path,
                                                    baseline):
        cache = ResultCache(tmp_path / "cache")
        run_campaign_config(config(), cache=cache)
        metrics = RunMetrics()
        again = run_campaign_config(config(), cache=cache, metrics=metrics)
        assert again.to_json() == baseline
        assert all(
            stats["resumed"]
            for name, stats in again.stage_stats.items()
            if name.startswith("unit-")
        )
        assert metrics.counters.get("jobs_executed", 0) == 0

    def test_overridden_jobs_share_the_same_cache_rows(self, tmp_path,
                                                       baseline):
        # Stage cache keys exclude engine knobs: a serial run's cache
        # resumes a --jobs 2 rerun wholesale.
        cache = ResultCache(tmp_path / "cache")
        run_campaign_config(config(), cache=cache)
        wide = run_campaign_config(config(), jobs=2, cache=cache)
        assert wide.to_json() == baseline
        assert all(
            stats["resumed"]
            for name, stats in wide.stage_stats.items()
            if name.startswith("unit-")
        )


class TestServiceEquivalence:
    def test_campaign_payload_result_is_the_report(self, baseline):
        from repro.service.schema import SimulationPayload
        from repro.service.workloads import render_document, run_payload

        payload = SimulationPayload.from_dict({
            "kind": "campaign",
            "campaign": json.loads(json.dumps(CAMPAIGN)),
        })
        assert render_document(run_payload(payload)) == baseline

    def test_unit_results_match_the_direct_payload_documents(self):
        from repro.service.schema import SimulationPayload
        from repro.service.workloads import run_payload

        run = run_campaign_config(config())
        unit = run.document["units"][0]
        direct = run_payload(SimulationPayload.from_dict({
            "kind": "montecarlo",
            "montecarlo": {
                "trials": 2, "seed": 3, "size": 8, "sigma": 0.05,
            },
        }))
        assert unit["result"] == direct
