"""Job-scoped observability: label injection, span tagging, lifecycle."""

import threading

import pytest

import repro.obs as obs
from repro.obs import trace
from repro.obs.metrics import Counter, MetricsRegistry, parse_prometheus
from repro.obs.trace import JobContext, current_job


@pytest.fixture(autouse=True)
def _clean_obs():
    trace.disable()
    trace.clear()
    trace.activate(None)
    obs.REGISTRY.reset()
    yield
    trace.disable()
    trace.clear()
    trace.activate(None)
    obs.REGISTRY.reset()


class TestJobContext:
    def test_sets_and_restores_current_job(self):
        assert current_job() is None
        with JobContext("job-1"):
            assert current_job() == "job-1"
            with JobContext("job-2"):
                assert current_job() == "job-2"
            assert current_job() == "job-1"
        assert current_job() is None

    def test_thread_isolation(self):
        seen = {}

        def worker():
            seen["worker"] = current_job()

        with JobContext("job-1"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # A thread spawned inside the context does not inherit the
        # contextvar (threads start from a fresh context) — only the
        # explicit propagation payload carries the job id across.
        assert seen["worker"] is None

    def test_propagation_payload_carries_job(self):
        trace.enable()
        with JobContext("job-1"):
            assert trace.current_context()["job"] == "job-1"

    def test_activate_adopts_remote_job(self):
        trace.activate({"enabled": True, "debug": False,
                        "parent": None, "job": "job-9"})
        try:
            assert current_job() == "job-9"
        finally:
            trace.activate(None)
        assert current_job() is None


class TestSpanTagging:
    def test_spans_carry_job_and_filter_cleanly(self):
        trace.enable()
        with JobContext("job-a"):
            with trace.span("inside.a"):
                pass
        with JobContext("job-b"):
            with trace.span("inside.b"):
                pass
        with trace.span("outside"):
            pass
        a_spans = trace.spans_for_job("job-a")
        assert [s["name"] for s in a_spans] == ["inside.a"]
        assert all(s["job"] == "job-a" for s in a_spans)
        assert len(trace.spans()) == 3

    def test_take_job_spans_drains_only_that_job(self):
        trace.enable()
        with JobContext("job-a"):
            with trace.span("inside.a"):
                pass
        with trace.span("outside"):
            pass
        taken = trace.take_job_spans("job-a")
        assert [s["name"] for s in taken] == ["inside.a"]
        assert [s["name"] for s in trace.spans()] == ["outside"]

    def test_chrome_events_expose_job_arg(self):
        trace.enable()
        with JobContext("job-a"):
            with trace.span("inside.a"):
                pass
        events = [
            e for e in trace.to_chrome_events() if e.get("ph") == "X"
        ]
        assert events[0]["args"]["job"] == "job-a"


class TestRegistryInjection:
    def test_registry_injects_job_label(self):
        counter = obs.REGISTRY.counter("events_total")
        with JobContext("job-1"):
            counter.inc()
        counter.inc()
        assert counter.value(job="job-1") == 1
        assert counter.value() == 1
        assert counter.total() == 2

    def test_standalone_metrics_do_not_inject(self):
        counter = Counter("events_total")
        with JobContext("job-1"):
            counter.inc()
        assert counter.value() == 1
        assert counter.value(job="job-1") == 0

    def test_plain_registry_does_not_inject(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        with JobContext("job-1"):
            counter.inc()
        assert counter.value() == 1

    def test_explicit_job_label_wins(self):
        counter = obs.REGISTRY.counter("events_total")
        with JobContext("job-1"):
            counter.inc(job="other")
        assert counter.value(job="other") == 1
        assert counter.value(job="job-1") == 0


class TestLabelLifecycle:
    def _populate(self):
        counter = obs.REGISTRY.counter("events_total")
        gauge = obs.REGISTRY.gauge("depth")
        hist = obs.REGISTRY.histogram("latency", buckets=(1.0, 2.0))
        counter.inc(2, kind="solve")
        with JobContext("job-1"):
            counter.inc(3, kind="solve")
            gauge.set(7)
            hist.observe(0.5)
        return counter, gauge, hist

    def test_filter_job_is_a_detached_snapshot(self):
        counter, _, _ = self._populate()
        view = obs.REGISTRY.filter_job("job-1")
        samples = parse_prometheus(view.to_prometheus())
        assert samples["events_total"]["samples"][
            ("events_total", (("job", "job-1"), ("kind", "solve")))
        ] == 3
        # Detached: mutating the view leaves the registry untouched.
        view.counter("events_total").inc(100, job="job-1")
        assert counter.value(job="job-1", kind="solve") == 3

    def test_rollup_folds_counts_and_evicts_gauges(self):
        counter, gauge, hist = self._populate()
        evicted = obs.REGISTRY.rollup_job("job-1")
        assert evicted == 3
        assert obs.REGISTRY.job_label_values() == set()
        # Counter and histogram counts fold into the base series.
        assert counter.value(kind="solve") == 5
        assert hist.snapshot()["count"] == 1
        # Gauges are point-in-time: evicted, not merged.
        assert gauge.value() == 0

    def test_round_trip_with_job_labels(self):
        self._populate()
        families = parse_prometheus(obs.REGISTRY.to_prometheus())
        assert families["events_total"]["samples"][
            ("events_total", (("job", "job-1"), ("kind", "solve")))
        ] == 3
        assert families["latency"]["samples"][
            ("latency_count", (("job", "job-1"),))
        ] == 1

    def test_job_label_values_lists_live_jobs(self):
        self._populate()
        with JobContext("job-2"):
            obs.REGISTRY.counter("events_total").inc()
        assert obs.REGISTRY.job_label_values() == {"job-1", "job-2"}
