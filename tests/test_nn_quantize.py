"""Fixed-point quantization and the weight-to-cell mapping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.quantize import (
    bit_slice,
    dequantize,
    quantize,
    split_polarity,
    weight_to_cell_levels,
)
from repro.tech import get_memristor_model


class TestQuantize:
    def test_signed_range(self):
        levels = quantize(np.array([-1.0, 0.0, 0.999]), bits=8)
        assert levels[0] == -128
        assert levels[1] == 0
        assert levels[2] == 127

    def test_saturation(self):
        levels = quantize(np.array([-5.0, 5.0]), bits=8)
        assert levels.tolist() == [-128, 127]

    def test_unsigned_range(self):
        levels = quantize(np.array([0.0, 1.0]), bits=4, signed=False)
        assert levels.tolist() == [0, 15]

    def test_round_trip_error_bounded(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-0.99, 0.99, size=1000)
        rebuilt = dequantize(quantize(values, 8), 8)
        step = 1.0 / 128
        assert np.max(np.abs(values - rebuilt)) <= step / 2 + 1e-12

    def test_full_scale_scaling(self):
        levels = quantize(np.array([2.0]), bits=8, full_scale=4.0)
        assert levels[0] == 64

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            quantize(np.ones(3), bits=0)
        with pytest.raises(ConfigError):
            quantize(np.ones(3), bits=8, full_scale=0)


class TestPolaritySplit:
    def test_split_covers_value(self):
        values = np.array([-3, 0, 5])
        pos, neg = split_polarity(values)
        assert (pos - neg).tolist() == values.tolist()
        assert np.all(pos >= 0) and np.all(neg >= 0)


class TestBitSlice:
    def test_slices_reassemble(self):
        values = np.array([0, 1, 77, 127])
        slices = bit_slice(values, slice_bits=4, slices=2)
        rebuilt = slices[0] + (slices[1] << 4)
        assert rebuilt.tolist() == values.tolist()

    def test_slice_range(self):
        slices = bit_slice(np.array([255]), slice_bits=4, slices=2)
        assert all(np.all(s <= 15) for s in slices)

    def test_overflow_detected(self):
        with pytest.raises(ConfigError, match="more than"):
            bit_slice(np.array([256]), slice_bits=4, slices=2)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            bit_slice(np.array([-1]), slice_bits=4, slices=2)


class TestWeightToCellLevels:
    def test_reference_rram_single_slice(self):
        device = get_memristor_model("RRAM")  # 7-bit cells
        weights = np.array([[0.5, -0.5], [0.0, 0.99]])
        mapped = weight_to_cell_levels(weights, weight_bits=8, device=device)
        assert len(mapped) == 1  # 7 magnitude bits fit one 7-bit cell
        pos, neg = mapped[0]
        assert pos[0, 0] == 64 and neg[0, 0] == 0
        assert pos[0, 1] == 0 and neg[0, 1] == 64
        assert np.all(pos < device.levels)

    def test_prime_style_two_slices(self):
        device = get_memristor_model("RRAM-4BIT")
        weights = np.array([[0.99]])
        mapped = weight_to_cell_levels(weights, weight_bits=8, device=device)
        assert len(mapped) == 2  # 7 magnitude bits over 4-bit cells
        pos_lo, _ = mapped[0]
        pos_hi, _ = mapped[1]
        assert pos_lo[0, 0] + (pos_hi[0, 0] << 4) == 127

    def test_most_negative_value_clamped(self):
        device = get_memristor_model("RRAM")
        mapped = weight_to_cell_levels(
            np.array([[-1.0]]), weight_bits=8, device=device
        )
        _, neg = mapped[0]
        assert neg[0, 0] == 127  # |-128| clamps into 7 magnitude bits

    def test_unsigned_mapping_has_empty_negative_plane(self):
        device = get_memristor_model("RRAM")
        mapped = weight_to_cell_levels(
            np.array([[0.5]]), weight_bits=7, device=device, signed=False
        )
        _, neg = mapped[0]
        assert np.all(neg == 0)
