"""Unit-conversion helpers."""

import math

import pytest

from repro import units


def test_length_constants_are_si():
    assert units.NM == pytest.approx(1e-9)
    assert units.UM == pytest.approx(1e-6)
    assert units.MM == pytest.approx(1e-3)


def test_area_constants_square_their_lengths():
    assert units.UM2 == pytest.approx(units.UM**2)
    assert units.MM2 == pytest.approx(units.MM**2)


def test_to_unit_round_trips_with_from_unit():
    for value in (0.0, 1.5e-6, 42.0, -3e-9):
        for unit in (units.NS, units.UJ, units.MW, units.MM2):
            assert units.from_unit(units.to_unit(value, unit), unit) == (
                pytest.approx(value)
            )


def test_to_unit_example():
    assert units.to_unit(2.5e-6, units.US) == pytest.approx(2.5)


def test_fmt_si_picks_engineering_prefixes():
    assert units.fmt_si(1.5e-6, "J") == "1.5 uJ"
    assert units.fmt_si(2.2e-3, "W") == "2.2 mW"
    assert units.fmt_si(3.0e9, "Hz") == "3 GHz"


def test_fmt_si_zero_and_tiny_values():
    assert units.fmt_si(0, "J") == "0 J"
    text = units.fmt_si(5e-16, "J")
    assert "fJ" in text


def test_fmt_si_negative_values_keep_sign():
    assert units.fmt_si(-2e-6, "s").startswith("-2")


def test_frequency_constants():
    assert units.GHZ / units.MHZ == pytest.approx(1000.0)
    assert units.MHZ / units.KHZ == pytest.approx(1000.0)
