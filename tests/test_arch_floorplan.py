"""First-order floorplanning."""

import math

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.floorplan import (
    DEFAULT_WHITESPACE_FACTOR,
    floorplan,
    with_floorplan_overheads,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import mlp, validation_mlp


@pytest.fixture
def accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return Accelerator(config, validation_mlp())


class TestGeometry:
    def test_one_slot_per_bank(self, accelerator):
        plan = floorplan(accelerator)
        assert len(plan.slots) == len(accelerator.banks)

    def test_slots_do_not_overlap(self, accelerator):
        plan = floorplan(accelerator)
        for a in plan.slots:
            for b in plan.slots:
                if a.index >= b.index:
                    continue
                separated = (
                    a.x + a.width <= b.x + 1e-12
                    or b.x + b.width <= a.x + 1e-12
                    or a.y + a.height <= b.y + 1e-12
                    or b.y + b.height <= a.y + 1e-12
                )
                assert separated, (a, b)

    def test_slots_inside_die(self, accelerator):
        plan = floorplan(accelerator)
        for slot in plan.slots:
            assert slot.x + slot.width <= plan.die_width + 1e-12
            assert slot.y + slot.height <= plan.die_height + 1e-12

    def test_utilization_bounded_by_whitespace(self, accelerator):
        plan = floorplan(accelerator)
        assert 0 < plan.utilization <= 1 / DEFAULT_WHITESPACE_FACTOR + 1e-9

    def test_near_square_die_for_many_banks(self):
        config = SimConfig(crossbar_size=64, cmos_tech=45)
        acc = Accelerator(config, mlp([256] * 10, name="deep"))
        plan = floorplan(acc)
        assert 0.3 < plan.aspect_ratio < 3.0

    def test_whitespace_factor_validated(self, accelerator):
        with pytest.raises(ConfigError):
            floorplan(accelerator, whitespace_factor=0.9)


class TestWires:
    def test_wire_length_matches_slot_centres(self, accelerator):
        plan = floorplan(accelerator)
        manual = 0.0
        for a, b in zip(plan.slots, plan.slots[1:]):
            (ax, ay), (bx, by) = a.center, b.center
            manual += abs(ax - bx) + abs(ay - by)
        assert plan.total_wire_length() == pytest.approx(manual)

    def test_wire_overheads_positive_for_multibank(self, accelerator):
        plan = floorplan(accelerator)
        assert plan.wire_latency > 0
        assert plan.wire_energy_per_sample > 0

    def test_single_bank_has_no_cascade_wire(self):
        config = SimConfig(crossbar_size=128, cmos_tech=45)
        acc = Accelerator(config, mlp([128, 128], name="single"))
        plan = floorplan(acc)
        assert len(plan.slots) == 1
        assert plan.wire_latency == 0.0
        assert plan.wire_energy_per_sample == 0.0


class TestOverheads:
    def test_floorplanned_performance_dominates_raw(self, accelerator):
        raw = accelerator.sample_performance()
        planned = with_floorplan_overheads(accelerator)
        assert planned.area > raw.area
        assert planned.latency > raw.latency
        assert planned.dynamic_energy > raw.dynamic_energy

    def test_overheads_are_second_order(self, accelerator):
        """The global wires must stay a correction, not a dominator."""
        raw = accelerator.sample_performance()
        planned = with_floorplan_overheads(accelerator)
        assert planned.latency < raw.latency * 1.5
        assert planned.dynamic_energy < raw.dynamic_energy * 1.5
