"""Layer specs: shapes, passes, geometry."""

import pytest

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer, FullyConnectedLayer


class TestFullyConnected:
    def test_weight_shape_out_by_in(self):
        layer = FullyConnectedLayer(2048, 1024)
        assert layer.weight_shape == (1024, 2048)
        assert layer.weight_count == 2048 * 1024

    def test_one_pass_per_sample(self):
        assert FullyConnectedLayer(16, 8).compute_passes == 1

    def test_io_values(self):
        layer = FullyConnectedLayer(64, 16)
        assert layer.input_values == 64
        assert layer.output_values == 16

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            FullyConnectedLayer(0, 8)


class TestConv:
    def test_weight_shape_flattens_kernels(self):
        layer = ConvLayer(64, 128, kernel=3, input_size=56, padding=1)
        assert layer.weight_shape == (128, 64 * 9)

    def test_conv_output_geometry(self):
        layer = ConvLayer(3, 64, kernel=3, input_size=224, padding=1)
        assert layer.conv_output_size == 224
        strided = ConvLayer(3, 96, kernel=11, input_size=227, stride=4)
        assert strided.conv_output_size == 55

    def test_pooling_shrinks_output(self):
        layer = ConvLayer(3, 64, kernel=3, input_size=224, padding=1,
                          pooling=2)
        assert layer.output_size == 112
        assert layer.output_values == 64 * 112 * 112

    def test_non_dividing_pooling_floors(self):
        layer = ConvLayer(3, 96, kernel=11, input_size=227, stride=4,
                          pooling=2)
        assert layer.output_size == 27  # 55 // 2

    def test_one_pass_per_output_position(self):
        layer = ConvLayer(3, 64, kernel=3, input_size=224, padding=1)
        assert layer.compute_passes == 224 * 224

    def test_kernel_too_large_raises(self):
        with pytest.raises(ConfigError):
            ConvLayer(3, 8, kernel=9, input_size=5)

    def test_pooling_too_large_raises(self):
        with pytest.raises(ConfigError):
            ConvLayer(3, 8, kernel=3, input_size=5, pooling=8)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            ConvLayer(3, 8, kernel=3, input_size=8, stride=0)
        with pytest.raises(ConfigError):
            ConvLayer(3, 8, kernel=3, input_size=8, padding=-1)
