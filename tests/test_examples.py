"""Smoke-run the example scripts (the fast ones) as subprocesses.

Examples are documentation that executes; these tests keep them green.
The slow, solver-heavy examples (spice_vs_mnsim, functional_simulation)
are exercised by the benchmark suite instead.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_module.py",
    "prime_isaac.py",
    "large_layer_dse.py",
    "explore_and_export.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_every_example_has_a_docstring_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        text = path.read_text(encoding="utf-8")
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), (
            f"{path.name} needs a shebang + docstring header"
        )
        assert 'if __name__ == "__main__":' in text, (
            f"{path.name} needs a main guard"
        )
        assert "Run:" in text, f"{path.name} docstring should say how to run"
