"""Level-2 Computation Bank cost model."""

import pytest

from repro.arch.bank import ComputationBank
from repro.circuits import LineBufferModule, RegisterFileModule
from repro.config import SimConfig
from repro.nn.layers import ConvLayer, FullyConnectedLayer


@pytest.fixture
def config():
    return SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)


@pytest.fixture
def fc_bank(config):
    return ComputationBank(config, FullyConnectedLayer(2048, 1024))


@pytest.fixture
def conv_layer():
    return ConvLayer(64, 128, kernel=3, input_size=56, padding=1, pooling=2)


class TestStructure:
    def test_unit_count_matches_mapping(self, fc_bank):
        assert fc_bank.units == fc_bank.mapping.units
        assert fc_bank.crossbars == fc_bank.mapping.crossbars
        assert fc_bank.mapping.row_blocks == 16
        assert fc_bank.mapping.col_blocks == 8

    def test_fc_output_buffer_is_register_file(self, fc_bank):
        assert isinstance(fc_bank.output_buffer, RegisterFileModule)
        assert fc_bank.output_buffer.words == 1024

    def test_fc_bank_has_no_pooling(self, fc_bank):
        assert fc_bank.pooling is None

    def test_conv_bank_gets_pooling_and_line_buffers(self, config, conv_layer):
        next_layer = ConvLayer(128, 128, kernel=3, input_size=28, padding=1)
        bank = ComputationBank(config, conv_layer, next_layer=next_layer)
        assert bank.pooling is not None
        assert isinstance(bank.pooling_buffer, LineBufferModule)
        assert isinstance(bank.output_buffer, LineBufferModule)
        # Eq. 6: W_{i+1}(h-1) + w = 28*2 + 3.
        assert bank.output_buffer.length == 59
        assert bank.output_buffer.lanes == 128

    def test_final_conv_gets_row_band_buffer(self, config, conv_layer):
        bank = ComputationBank(config, conv_layer, next_layer=None)
        assert isinstance(bank.output_buffer, LineBufferModule)
        assert bank.output_buffer.length == conv_layer.output_size


class TestCosts:
    def test_pass_is_serial_composition(self, fc_bank):
        synapse = fc_bank.synapse_pass_performance()
        merge = fc_bank.merge_pass_performance()
        neuron = fc_bank.neuron_pass_performance()
        total = fc_bank.pass_performance()
        assert total.latency == pytest.approx(
            synapse.latency + merge.latency + neuron.latency
        )
        assert total.area == pytest.approx(
            synapse.area + merge.area + neuron.area
        )

    def test_fc_sample_equals_single_pass(self, fc_bank):
        assert fc_bank.sample_performance().latency == pytest.approx(
            fc_bank.pass_performance().latency
        )

    def test_conv_sample_scales_with_positions(self, config, conv_layer):
        bank = ComputationBank(config, conv_layer)
        sample = bank.sample_performance()
        single = bank.pass_performance()
        assert sample.latency == pytest.approx(
            single.latency * conv_layer.compute_passes
        )
        assert sample.area == pytest.approx(single.area)

    def test_synapse_units_run_in_parallel(self, fc_bank):
        """Bank synapse latency equals one unit's latency, not the sum."""
        unit, _count = fc_bank._shaped_units[0]
        assert fc_bank.synapse_pass_performance().latency == pytest.approx(
            unit.compute_performance().latency
        )

    def test_larger_crossbars_shrink_bank_area(self, config):
        layer = FullyConnectedLayer(2048, 1024)
        small = ComputationBank(config.replace(crossbar_size=64), layer)
        large = ComputationBank(config.replace(crossbar_size=256), layer)
        assert large.pass_performance().area < small.pass_performance().area

    def test_write_cost_positive(self, fc_bank):
        write = fc_bank.write_performance()
        assert write.dynamic_energy > 0
        assert write.latency > 0


class TestReport:
    def test_report_structure(self, fc_bank):
        node = fc_bank.report(name="bank[0]")
        names = [child.name for child in node.children]
        assert "synapse_sub_bank" in names
        assert "adder_tree+shift_add" in names
        assert "neuron+pooling+buffers" in names
        assert "units" in node.notes
