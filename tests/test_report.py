"""Performance records, composition rules, and report trees."""

import pytest

from repro.report import (
    Performance,
    ReportNode,
    format_table,
    parallel_sum,
    serial_sum,
)


def perf(area=1.0, energy=2.0, leak=0.5, latency=3.0):
    return Performance(
        area=area, dynamic_energy=energy, leakage_power=leak, latency=latency
    )


class TestPerformance:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Performance(area=-1)
        with pytest.raises(ValueError):
            Performance(latency=-1e-9)

    def test_serial_adds_everything(self):
        combined = perf().serial(perf(area=2, energy=3, leak=1, latency=4))
        assert combined.area == 3
        assert combined.dynamic_energy == 5
        assert combined.leakage_power == 1.5
        assert combined.latency == 7

    def test_parallel_takes_max_latency(self):
        combined = perf(latency=3).parallel(perf(latency=10))
        assert combined.latency == 10
        assert combined.area == 2.0

    def test_replicate_scales_resources_not_latency(self):
        r = perf().replicate(4)
        assert r.area == 4
        assert r.dynamic_energy == 8
        assert r.leakage_power == 2.0
        assert r.latency == 3

    def test_replicate_zero_is_empty(self):
        r = perf().replicate(0)
        assert (r.area, r.dynamic_energy, r.latency) == (0, 0, 0)

    def test_replicate_negative_raises(self):
        with pytest.raises(ValueError):
            perf().replicate(-1)

    def test_repeat_scales_time_not_area(self):
        r = perf().repeat(5)
        assert r.area == 1
        assert r.leakage_power == 0.5
        assert r.dynamic_energy == 10
        assert r.latency == 15

    def test_total_energy_includes_leakage(self):
        p = perf()
        assert p.total_energy() == pytest.approx(2.0 + 0.5 * 3.0)
        assert p.total_energy(duration=10) == pytest.approx(2.0 + 5.0)

    def test_average_power(self):
        p = perf()
        assert p.average_power == pytest.approx(p.total_energy() / p.latency)

    def test_average_power_zero_latency_is_leakage(self):
        p = Performance(leakage_power=0.7)
        assert p.average_power == 0.7

    def test_serial_and_parallel_sums(self):
        parts = [perf(latency=1), perf(latency=5), perf(latency=2)]
        assert serial_sum(parts).latency == 8
        assert parallel_sum(parts).latency == 5
        assert serial_sum(parts).area == parallel_sum(parts).area == 3

    def test_str_is_readable(self):
        text = str(perf())
        assert "area=" in text and "latency=" in text


class TestReportNode:
    def test_tree_building_and_find(self):
        root = ReportNode("root", perf())
        child = root.add(ReportNode("bank[0]", perf()))
        child.add(ReportNode("unit[0]", perf()))
        assert root.find("unit[0]") is not None
        assert root.find("nope") is None

    def test_render_indents_and_limits_depth(self):
        root = ReportNode("root", perf(), notes="2 banks")
        root.add(ReportNode("child", perf())).add(
            ReportNode("grandchild", perf())
        )
        full = root.render()
        assert "grandchild" in full
        assert "[2 banks]" in full
        shallow = root.render(max_depth=1)
        assert "child" in shallow
        assert "grandchild" not in shallow


class TestFormatTable:
    def test_aligned_output(self):
        text = format_table(["a", "metric"], [["1", "x"], ["22", "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
