"""Monte-Carlo accuracy simulation against the circuit solver."""

import numpy as np
import pytest

from repro.accuracy.interconnect import analog_error_rate
from repro.accuracy.montecarlo import (
    MonteCarloResult,
    bound_check,
    run_monte_carlo,
)
from repro.errors import ConfigError
from repro.tech import get_memristor_model

SEG_45NM = 0.25


@pytest.fixture(scope="module")
def device():
    return get_memristor_model("RRAM")


@pytest.fixture(scope="module")
def mc_result(device):
    rng = np.random.default_rng(99)
    return run_monte_carlo(device, size=16, segment_resistance=SEG_45NM,
                           rng=rng, trials=5)


class TestDistribution:
    def test_statistics_consistent(self, mc_result):
        assert 0 <= mc_result.mean_abs_error <= mc_result.max_abs_error
        assert mc_result.percentile(50) <= mc_result.percentile(99)
        assert mc_result.percentile(100) == pytest.approx(
            mc_result.max_abs_error
        )

    def test_reproducible_with_same_seed(self, device):
        a = run_monte_carlo(device, 8, SEG_45NM,
                            np.random.default_rng(7), trials=3)
        b = run_monte_carlo(device, 8, SEG_45NM,
                            np.random.default_rng(7), trials=3)
        assert np.array_equal(a.samples, b.samples)

    def test_full_input_mode_is_deterministic_worse(self, device):
        rng = np.random.default_rng(3)
        random_inputs = run_monte_carlo(
            device, 16, SEG_45NM, rng, trials=3, input_mode="random"
        )
        rng = np.random.default_rng(3)
        full_inputs = run_monte_carlo(
            device, 16, SEG_45NM, rng, trials=3, input_mode="full"
        )
        # Driving every row at full scale biases cells harder.
        assert full_inputs.mean_abs_error >= (
            random_inputs.mean_abs_error * 0.5
        )


class TestVariation:
    def test_variation_widens_the_distribution(self, device):
        base = run_monte_carlo(
            device, 16, SEG_45NM, np.random.default_rng(5), trials=4,
            sigma=0.0,
        )
        noisy = run_monte_carlo(
            device, 16, SEG_45NM, np.random.default_rng(5), trials=4,
            sigma=0.3,
        )
        assert noisy.max_abs_error > base.max_abs_error


class TestBoundCheck:
    def test_worst_case_model_dominates_random_samples(self, device,
                                                       mc_result):
        """The closed-form worst case must bound the Monte-Carlo
        distribution — the basic soundness of Sec. VI.C."""
        worst = abs(analog_error_rate(16, 16, SEG_45NM, device))
        assert bound_check(mc_result, worst, slack=2.0)

    def test_bound_check_rejects_negative_bound(self, mc_result):
        with pytest.raises(ConfigError):
            bound_check(mc_result, -0.1)

    def test_bound_check_fails_for_tiny_bound(self, mc_result):
        assert not bound_check(mc_result, 1e-9, slack=1.0)


class TestSeededProtocol:
    """Satellite: explicit seed threading for schedule-independence."""

    def test_fixed_seed_gives_identical_samples(self, device):
        a = run_monte_carlo(device, 8, SEG_45NM, seed=21, trials=4)
        b = run_monte_carlo(device, 8, SEG_45NM, seed=21, trials=4)
        assert np.array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self, device):
        a = run_monte_carlo(device, 8, SEG_45NM, seed=21, trials=4)
        b = run_monte_carlo(device, 8, SEG_45NM, seed=22, trials=4)
        assert not np.array_equal(a.samples, b.samples)

    def test_parallel_matches_serial(self, device):
        serial = run_monte_carlo(device, 8, SEG_45NM, seed=5, trials=5)
        parallel = run_monte_carlo(device, 8, SEG_45NM, seed=5, trials=5,
                                   jobs=2)
        assert np.array_equal(serial.samples, parallel.samples)

    def test_parity_across_jobs_and_chunk_sizes(self, device):
        """Bit-identical statistics for jobs=0/2 and any chunk_size.

        The per-trial spawn key must be the only RNG source in the
        workers, so the execution schedule (worker count, chunking)
        can never leak into the sampled values.
        """
        from repro.runtime.pool import RunPolicy

        reference = run_monte_carlo(device, 8, SEG_45NM, seed=13,
                                    trials=6)
        for policy in (
            RunPolicy(jobs=2),
            RunPolicy(jobs=0),
            RunPolicy(jobs=2, chunk_size=1),
            RunPolicy(jobs=2, chunk_size=4),
            RunPolicy(jobs=0, chunk_size=5),
        ):
            run = run_monte_carlo(device, 8, SEG_45NM, seed=13,
                                  trials=6, policy=policy)
            assert np.array_equal(reference.samples, run.samples), (
                f"schedule leaked into samples under {policy}"
            )

    def test_trial_streams_are_independent(self, device):
        """Prefixes agree: trials 0..2 of a 3-trial run equal trials
        0..2 of a 5-trial run (per-trial spawn keys, not one stream)."""
        short = run_monte_carlo(device, 8, SEG_45NM, seed=9, trials=3)
        long = run_monte_carlo(device, 8, SEG_45NM, seed=9, trials=5)
        assert np.array_equal(short.samples,
                              long.samples[: len(short.samples)])


class TestValidation:
    def test_invalid_args(self, device):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            run_monte_carlo(device, 8, SEG_45NM, rng, trials=0)
        with pytest.raises(ConfigError):
            run_monte_carlo(device, 8, SEG_45NM, rng, input_mode="spiky")

    def test_rng_and_seed_are_mutually_exclusive(self, device):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            run_monte_carlo(device, 8, SEG_45NM, rng, seed=1)
        with pytest.raises(ConfigError):
            run_monte_carlo(device, 8, SEG_45NM)  # neither

    def test_parallel_requires_seed(self, device):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            run_monte_carlo(device, 8, SEG_45NM, rng, jobs=2)


class TestBatchedParity:
    """The batched trial worker is byte-identical to the point-wise
    path for every ``jobs`` setting (DESIGN.md S22)."""

    def _pointwise(self, device, **kwargs):
        from repro.runtime.pool import RunPolicy
        return run_monte_carlo(
            device, 16, SEG_45NM, seed=11, trials=6,
            policy=RunPolicy(batch_within_chunk=False), **kwargs,
        )

    def test_batched_matches_pointwise_serial(self, device):
        batched = run_monte_carlo(device, 16, SEG_45NM, seed=11,
                                  trials=6)
        assert np.array_equal(batched.samples,
                              self._pointwise(device).samples)

    def test_batched_matches_pointwise_parallel(self, device):
        batched = run_monte_carlo(device, 16, SEG_45NM, seed=11,
                                  trials=6, jobs=2)
        assert np.array_equal(batched.samples,
                              self._pointwise(device).samples)

    def test_multi_input_trials_fall_back_identically(self, device):
        """``inputs_per_trial > 1`` uses the per-trial solve_many path
        inside the batch worker's fallback — still byte-identical."""
        from repro.runtime.pool import RunPolicy
        batched = run_monte_carlo(device, 12, SEG_45NM, seed=13,
                                  trials=4, inputs_per_trial=3)
        pointwise = run_monte_carlo(
            device, 12, SEG_45NM, seed=13, trials=4, inputs_per_trial=3,
            policy=RunPolicy(batch_within_chunk=False),
        )
        assert np.array_equal(batched.samples, pointwise.samples)

    def test_full_input_mode_batched_identically(self, device):
        from repro.runtime.pool import RunPolicy
        batched = run_monte_carlo(device, 12, SEG_45NM, seed=17,
                                  trials=4, input_mode="full")
        pointwise = run_monte_carlo(
            device, 12, SEG_45NM, seed=17, trials=4, input_mode="full",
            policy=RunPolicy(batch_within_chunk=False),
        )
        assert np.array_equal(batched.samples, pointwise.samples)
