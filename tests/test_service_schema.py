"""Payload validation: structured rejection before the engine runs."""

import pytest

from repro.errors import ValidationError
from repro.service.schema import (
    FaultMode,
    InputMode,
    NetworkTopology,
    PayloadKind,
    SimulationPayload,
)

MC_PAYLOAD = {
    "kind": "montecarlo",
    "montecarlo": {"trials": 3, "seed": 1, "size": 8},
}


def reject(data):
    with pytest.raises(ValidationError) as excinfo:
        SimulationPayload.from_dict(data)
    return excinfo.value


class TestVocabularies:
    def test_bad_kind_names_the_vocabulary(self):
        err = reject({"kind": "train"})
        assert err.path == "kind"
        assert err.value == "train"
        assert err.allowed == tuple(k.value for k in PayloadKind)

    def test_missing_kind(self):
        err = reject({})
        assert err.path == "kind"
        assert "missing" in str(err)

    def test_fault_mode_vocabulary_with_index(self):
        err = reject({
            "kind": "faults",
            "faults": {"modes": ["stuck_low", "bogus"]},
        })
        assert err.path == "faults.modes[1]"
        assert err.value == "bogus"
        assert err.allowed == tuple(m.value for m in FaultMode)

    def test_device_vocabulary(self):
        err = reject({"kind": "faults", "faults": {"device": "FLASH"}})
        assert err.path == "faults.device"
        assert "RRAM" in err.allowed

    def test_network_topology_vocabulary(self):
        err = reject({
            "kind": "simulate",
            "network": {"topology": "resnet"},
        })
        assert err.path == "network.topology"
        assert err.allowed == tuple(t.value for t in NetworkTopology)


class TestStructure:
    def test_unknown_top_level_field(self):
        err = reject(dict(MC_PAYLOAD, extra=1))
        assert err.path == "extra"
        assert "kind" in err.allowed

    def test_unknown_nested_field(self):
        err = reject({
            "kind": "montecarlo",
            "montecarlo": {"trials": 3, "samples": 10},
        })
        assert err.path == "montecarlo.samples"
        assert "trials" in err.allowed

    def test_network_required_for_simulate(self):
        err = reject({"kind": "simulate"})
        assert err.path == "network"

    def test_network_rejected_for_montecarlo(self):
        err = reject(dict(
            MC_PAYLOAD, network={"topology": "validation-mlp"}
        ))
        assert err.path == "network"

    def test_foreign_section_rejected(self):
        err = reject({
            "kind": "montecarlo",
            "faults": {"trials": 3},
        })
        assert err.path == "faults"

    def test_mlp_needs_sizes(self):
        err = reject({"kind": "simulate", "network": {"topology": "mlp"}})
        assert err.path == "network.sizes"

    def test_builtin_rejects_sizes(self):
        err = reject({
            "kind": "simulate",
            "network": {"topology": "jpeg", "sizes": [4, 4]},
        })
        assert err.path == "network.sizes"

    def test_config_errors_get_config_prefix(self):
        err = reject(dict(MC_PAYLOAD, config={"weight_polarity": 3}))
        assert err.path == "config.weight_polarity"
        assert err.value == 3
        assert err.allowed == (1, 2)

    def test_unknown_config_key_prefixed(self):
        err = reject(dict(MC_PAYLOAD, config={"xbar": 64}))
        assert err.path == "config.xbar"

    def test_type_errors_carry_value(self):
        err = reject({
            "kind": "montecarlo", "montecarlo": {"trials": "many"},
        })
        assert err.path == "montecarlo.trials"
        assert err.value == "many"

    def test_sweep_node_vocabulary(self):
        err = reject({
            "kind": "explore",
            "network": {"topology": "large-bank"},
            "sweep": {"interconnect_nodes": [28, 99]},
        })
        assert err.path.startswith("sweep")

    def test_to_dict_is_json_safe(self):
        err = reject({"kind": "montecarlo", "montecarlo": {"trials": -2}})
        doc = err.to_dict()
        assert doc["path"] == "montecarlo.trials"
        assert doc["value"] == -2
        assert "message" in doc


class TestCanonicalisation:
    def test_roundtrip_and_defaults(self):
        payload = SimulationPayload.from_dict(MC_PAYLOAD)
        assert payload.kind is PayloadKind.MONTECARLO
        assert payload.montecarlo.input_mode is InputMode.RANDOM
        again = SimulationPayload.from_dict(payload.to_dict())
        assert again == payload

    def test_fingerprint_ignores_key_order(self):
        a = SimulationPayload.from_dict(MC_PAYLOAD)
        reordered = {
            "montecarlo": {"size": 8, "seed": 1, "trials": 3},
            "kind": "montecarlo",
        }
        b = SimulationPayload.from_dict(reordered)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_ignores_execution_knobs(self):
        a = SimulationPayload.from_dict(MC_PAYLOAD)
        b = SimulationPayload.from_dict(
            dict(MC_PAYLOAD, execution={"jobs": 4, "retries": 2})
        )
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_result_inputs(self):
        a = SimulationPayload.from_dict(MC_PAYLOAD)
        b = SimulationPayload.from_dict({
            "kind": "montecarlo",
            "montecarlo": {"trials": 3, "seed": 2, "size": 8},
        })
        assert a.fingerprint() != b.fingerprint()

    def test_faults_payload_canonicalises_to_campaign_spec(self):
        payload = SimulationPayload.from_dict({
            "kind": "faults",
            "faults": {"modes": ["drift"], "rates": [0.0, 0.1],
                       "trials": 2, "size": 8},
        })
        spec = payload.faults.to_campaign_spec()
        assert spec.fault_modes == ("drift",)
        assert spec.fault_rates == (0.0, 0.1)

    def test_circuit_only_mode_on_mlp_rejected(self):
        err = reject({
            "kind": "faults",
            "faults": {"networks": ["mlp:4,4"], "modes": ["line_open"]},
        })
        assert err.path == "faults"

    def test_validation_never_touches_the_engine(self, monkeypatch):
        import repro.service.workloads as workloads

        def boom(*_a, **_k):  # pragma: no cover - must not run
            raise AssertionError("engine reached during validation")

        monkeypatch.setattr(workloads, "run_payload", boom)
        reject({"kind": "montecarlo", "montecarlo": {"trials": 0}})
        SimulationPayload.from_dict(MC_PAYLOAD)  # valid: still no engine
