"""Command-line interface."""

import pytest

from repro.cli import main, parse_network
from repro.errors import ConfigError


class TestParseNetwork:
    def test_builtins(self):
        assert parse_network("validation-mlp").depth == 2
        assert parse_network("vgg16").depth == 16
        assert parse_network("JPEG").name.startswith("jpeg")

    def test_mlp_spec(self):
        net = parse_network("mlp:784,256,10")
        assert net.depth == 2
        assert net.input_values == 784

    def test_bad_specs(self):
        with pytest.raises(ConfigError):
            parse_network("resnet50")
        with pytest.raises(ConfigError):
            parse_network("mlp:a,b")


class TestSimulate:
    def test_summary_output(self, capsys):
        code = main(["simulate", "mlp:64,32", "--cmos-tech", "45"])
        out = capsys.readouterr().out
        assert code == 0
        assert "area (mm^2)" in out
        assert "relative accuracy" in out

    def test_report_and_breakdown_flags(self, capsys):
        code = main([
            "simulate", "mlp:64,32", "--report", "--breakdown",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bank[0]" in out
        assert "read_circuit" in out

    def test_config_file(self, tmp_path, capsys):
        config = tmp_path / "mnsim.cfg"
        config.write_text("Crossbar_Size = 64\nCMOS_Tech = 65\n")
        code = main(["simulate", "mlp:64,32", "--config", str(config)])
        assert code == 0

    def test_flag_overrides_file(self, tmp_path, capsys):
        config = tmp_path / "mnsim.cfg"
        config.write_text("Crossbar_Size = 64\n")
        code = main([
            "simulate", "mlp:64,32", "--config", str(config),
            "--crossbar-size", "128",
        ])
        assert code == 0

    def test_unknown_network_is_an_error(self, capsys):
        code = main(["simulate", "resnet"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExplore:
    def test_optima_table(self, capsys):
        code = main([
            "explore", "mlp:256,128", "--sizes", "64", "128",
            "--degrees", "1", "64", "--wires", "28", "45",
            "--weight-bits", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "designs explored" in out
        assert "accuracy" in out

    def test_infeasible_constraint_fails(self, capsys):
        code = main([
            "explore", "mlp:4096,4096", "--sizes", "1024",
            "--degrees", "1", "--wires", "18",
            "--max-error", "0.000001",
        ])
        assert code == 1
        assert "no feasible" in capsys.readouterr().err


class TestNetlist:
    def test_stdout_netlist(self, capsys):
        code = main(["netlist", "--crossbar-size", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Rcell0_0" in out
        assert ".end" in out

    def test_file_output_round_trips(self, tmp_path, capsys):
        from repro.spice.parser import parse_netlist

        target = tmp_path / "xbar.sp"
        code = main([
            "netlist", "--crossbar-size", "4", "--seed", "3",
            "-o", str(target),
        ])
        assert code == 0
        parsed = parse_netlist(target.read_text())
        assert parsed.resistances.shape == (4, 4)


class TestSuggest:
    def test_suggest_table(self, capsys):
        code = main([
            "suggest", "mlp:256,128", "--weight-bits", "4",
            "--free", "parallelism_degree",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "target" in out
        assert "accuracy" in out

    def test_suggest_unknown_field_errors(self, capsys):
        code = main(["suggest", "mlp:64,32", "--free", "cmos_tech"])
        assert code == 2
        assert "cannot sweep" in capsys.readouterr().err

    def test_suggest_infeasible_constraint_errors(self, capsys):
        code = main([
            "suggest", "mlp:4096,4096", "--free", "crossbar_size",
            "--max-error", "0.0000001",
        ])
        assert code == 2
