"""Command-line interface."""

import pytest

from repro.cli import main, parse_network
from repro.errors import ConfigError, JobExecutionError


class TestParseNetwork:
    def test_builtins(self):
        assert parse_network("validation-mlp").depth == 2
        assert parse_network("vgg16").depth == 16
        assert parse_network("JPEG").name.startswith("jpeg")

    def test_mlp_spec(self):
        net = parse_network("mlp:784,256,10")
        assert net.depth == 2
        assert net.input_values == 784

    def test_bad_specs(self):
        with pytest.raises(ConfigError):
            parse_network("resnet50")
        with pytest.raises(ConfigError):
            parse_network("mlp:a,b")


class TestSimulate:
    def test_summary_output(self, capsys):
        code = main(["simulate", "mlp:64,32", "--cmos-tech", "45"])
        out = capsys.readouterr().out
        assert code == 0
        assert "area (mm^2)" in out
        assert "relative accuracy" in out

    def test_report_and_breakdown_flags(self, capsys):
        code = main([
            "simulate", "mlp:64,32", "--report", "--breakdown",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bank[0]" in out
        assert "read_circuit" in out

    def test_config_file(self, tmp_path, capsys):
        config = tmp_path / "mnsim.cfg"
        config.write_text("Crossbar_Size = 64\nCMOS_Tech = 65\n")
        code = main(["simulate", "mlp:64,32", "--config", str(config)])
        assert code == 0

    def test_flag_overrides_file(self, tmp_path, capsys):
        config = tmp_path / "mnsim.cfg"
        config.write_text("Crossbar_Size = 64\n")
        code = main([
            "simulate", "mlp:64,32", "--config", str(config),
            "--crossbar-size", "128",
        ])
        assert code == 0

    def test_unknown_network_is_an_error(self, capsys):
        code = main(["simulate", "resnet"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExplore:
    def test_optima_table(self, capsys):
        code = main([
            "explore", "mlp:256,128", "--sizes", "64", "128",
            "--degrees", "1", "64", "--wires", "28", "45",
            "--weight-bits", "4",
        ])
        captured = capsys.readouterr()
        assert code == 0
        # Diagnostics go to stderr; the result table stays on stdout.
        assert "designs explored" in captured.err
        assert "designs explored" not in captured.out
        assert "accuracy" in captured.out

    def test_infeasible_constraint_fails(self, capsys):
        code = main([
            "explore", "mlp:4096,4096", "--sizes", "1024",
            "--degrees", "1", "--wires", "18",
            "--max-error", "0.000001",
        ])
        assert code == 1
        assert "no feasible" in capsys.readouterr().err


class TestRuntimeFlags:
    def test_explore_parallel(self, capsys):
        code = main([
            "explore", "mlp:128,64", "--sizes", "32", "64",
            "--degrees", "1", "--wires", "45", "--jobs", "2",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "runtime:" in captured.err
        assert "runtime:" not in captured.out

    def test_explore_with_cache_warms_up(self, tmp_path, capsys):
        argv = [
            "explore", "mlp:128,64", "--sizes", "32", "64",
            "--degrees", "1", "--wires", "45",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().err
        assert "0 cache hits" in first
        assert main(argv) == 0
        second = capsys.readouterr().err
        assert "2 cache hits" in second

    def test_no_cache_flag_disables(self, tmp_path, capsys):
        argv = [
            "explore", "mlp:128,64", "--sizes", "32",
            "--degrees", "1", "--wires", "45",
            "--cache-dir", str(tmp_path / "cache"), "--no-cache",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "cache hits" not in captured.out
        assert "cache hits" not in captured.err
        assert not (tmp_path / "cache" / "results.sqlite").exists()

    def test_simulate_accepts_cache(self, tmp_path, capsys):
        argv = [
            "simulate", "mlp:64,32",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "cache" / "results.sqlite").exists()
        assert (tmp_path / "cache" / "last_run.json").exists()

    def test_env_var_enables_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert main(["simulate", "mlp:64,32"]) == 0
        assert (tmp_path / "env" / "results.sqlite").exists()


class TestRuntimeStats:
    def test_empty_stats_view(self, tmp_path, capsys):
        code = main(["runtime-stats", "--cache-dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0
        assert "no runtime statistics recorded yet" in out

    def test_stats_after_cached_run(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "explore", "mlp:128,64", "--sizes", "32", "64",
            "--degrees", "1", "--wires", "45", "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["runtime-stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries (current version)" in out
        assert "last run:" in out
        assert "jobs total" in out


class TestExitCodes:
    def test_worker_failure_exits_3_with_summary(self, monkeypatch,
                                                 capsys):
        """Satellite: exhausted worker retries -> clean nonzero exit."""

        def exploding_explore(*_args, **_kwargs):
            raise JobExecutionError(
                "a chunk of 4 'simulate-point' jobs failed after "
                "2 attempt(s): TimeoutError"
            )

        monkeypatch.setattr("repro.cli.explore", exploding_explore)
        code = main([
            "explore", "mlp:64,32", "--sizes", "32",
            "--degrees", "1", "--wires", "45",
        ])
        err = capsys.readouterr().err
        assert code == 3
        assert err.startswith("error: ")
        assert "Traceback" not in err


class TestNetlist:
    def test_stdout_netlist(self, capsys):
        code = main(["netlist", "--crossbar-size", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Rcell0_0" in out
        assert ".end" in out

    def test_file_output_round_trips(self, tmp_path, capsys):
        from repro.spice.parser import parse_netlist

        target = tmp_path / "xbar.sp"
        code = main([
            "netlist", "--crossbar-size", "4", "--seed", "3",
            "-o", str(target),
        ])
        assert code == 0
        parsed = parse_netlist(target.read_text())
        assert parsed.resistances.shape == (4, 4)


class TestMonteCarlo:
    def test_montecarlo_table(self, capsys):
        code = main([
            "montecarlo", "--size", "8", "--trials", "2", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean |error|" in out
        assert "max |error|" in out


class TestObservabilityFlags:
    def test_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.trace.json"
        code = main([
            "--trace", str(trace),
            "explore", "mlp:128,64", "--sizes", "32",
            "--degrees", "1", "--wires", "45",
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().err
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "dse.explore" in names
        assert "runtime.run_jobs" in names

    def test_trace_env_var(self, tmp_path, monkeypatch, capsys):
        trace = tmp_path / "env.trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["simulate", "mlp:64,32"]) == 0
        assert trace.exists()

    def test_metrics_flag_prometheus(self, tmp_path, capsys):
        from repro.obs.metrics import parse_prometheus

        metrics = tmp_path / "run.prom"
        code = main([
            "--metrics", str(metrics),
            "explore", "mlp:128,64", "--sizes", "32",
            "--degrees", "1", "--wires", "45",
        ])
        assert code == 0
        families = parse_prometheus(metrics.read_text())
        assert "repro_runtime_events_total" in families

    def test_obs_report_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "--trace", str(trace),
            "explore", "mlp:128,64", "--sizes", "32",
            "--degrees", "1", "--wires", "45",
        ]) == 0
        capsys.readouterr()
        assert main(["obs-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "dse.explore" in out
        assert "span families" in out

    def test_obs_report_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(["obs-report", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_quiet_suppresses_diagnostics(self, capsys):
        code = main([
            "-q", "explore", "mlp:128,64", "--sizes", "32",
            "--degrees", "1", "--wires", "45",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "designs explored" not in captured.err
        assert "area" in captured.out


class TestSuggest:
    def test_suggest_table(self, capsys):
        code = main([
            "suggest", "mlp:256,128", "--weight-bits", "4",
            "--free", "parallelism_degree",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "target" in out
        assert "accuracy" in out

    def test_suggest_unknown_field_errors(self, capsys):
        code = main(["suggest", "mlp:64,32", "--free", "cmos_tech"])
        assert code == 2
        assert "cannot sweep" in capsys.readouterr().err

    def test_suggest_infeasible_constraint_errors(self, capsys):
        code = main([
            "suggest", "mlp:4096,4096", "--free", "crossbar_size",
            "--max-error", "0.0000001",
        ])
        assert code == 2
