"""Deterministic job identities: canonical serialization and keys."""

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import jpeg_autoencoder, validation_mlp
from repro.runtime.jobs import (
    JobSpec,
    canonical,
    canonical_json,
    content_key,
    network_fingerprint,
)

# Regression pin: the cache key of the default configuration.  If this
# changes, every persisted cache entry silently invalidates — that must
# be a deliberate decision (bump SCHEMA_VERSION), never an accident.
# Last deliberate change: runtime-v2 (canonical() float / dict-key
# stability fixes).
DEFAULT_CONFIG_KEY = (
    "7397fc8967e3758b93a67625a9615c71cbe332148320b13a8dd70c3eb48bd628"
)


class TestCanonical:
    def test_dict_key_order_is_irrelevant(self):
        a = {"x": 1, "y": [1, 2], "z": {"b": 2, "a": 1}}
        b = {"z": {"a": 1, "b": 2}, "y": (1, 2), "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_dataclasses_are_tagged_with_their_type(self):
        one = canonical(SimConfig())
        assert one["__type__"] == "SimConfig"

    def test_enum_reduces_to_value(self):
        assert canonical(SimConfig().cell_type) == "1T1R"

    def test_non_finite_floats_are_tagged(self):
        assert canonical(float("inf")) == {"__float__": "inf"}
        assert canonical(float("-inf")) == {"__float__": "-inf"}
        assert canonical(float("nan")) == {"__float__": "nan"}

    def test_non_finite_floats_do_not_collide_with_strings(self):
        # A genuine "nan" string must never share a key with float NaN.
        assert content_key(float("nan")) != content_key("nan")
        assert content_key(float("inf")) != content_key("inf")
        assert content_key(float("-inf")) != content_key("-inf")

    def test_nan_keys_are_stable(self):
        assert content_key(float("nan")) == content_key(float("nan"))

    def test_negative_zero_folds_into_zero(self):
        # -0.0 == 0.0, so equal configs must produce equal keys even
        # though JSON spells the two apart.
        assert canonical(-0.0) == 0.0
        assert content_key({"a": -0.0}) == content_key({"a": 0.0})
        assert canonical_json([-0.0]) == canonical_json([0.0])

    def test_mixed_type_dict_keys_do_not_crash(self):
        # sorted() over int-and-str keys raises TypeError; the sort
        # must run over stringified keys instead.
        key = content_key({1: "a", "2": "b"})
        assert key == content_key({"2": "b", 1: "a"})

    def test_numpy_scalars_reduce(self):
        np = pytest.importorskip("numpy")
        assert canonical(np.int64(3)) == 3
        assert canonical(np.float64(0.5)) == 0.5

    def test_unserializable_value_raises(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestConfigSerialization:
    """Satellite: deterministic SimConfig serialization (cache contract)."""

    def test_round_trip(self):
        config = SimConfig(
            crossbar_size=64, cell_type="0T1R", device_sigma=0.1,
            resistance_range=(1e3, 1e6), network_depth=3,
        )
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_key_order_is_sorted(self):
        keys = list(SimConfig().to_dict())
        assert keys == sorted(keys)

    def test_stable_hash_regression(self):
        assert content_key(SimConfig().to_dict()) == DEFAULT_CONFIG_KEY

    def test_distinct_configs_get_distinct_keys(self):
        a = content_key(SimConfig().to_dict())
        b = content_key(SimConfig(crossbar_size=64).to_dict())
        assert a != b

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            SimConfig.from_dict({"crossbar_size": 64, "warp_drive": 9})


class TestContentKey:
    def test_part_boundaries_matter(self):
        assert content_key("ab", "c") != content_key("a", "bc")

    def test_same_parts_same_key(self):
        assert content_key(1, "x", [2.5]) == content_key(1, "x", (2.5,))


class TestNetworkFingerprint:
    def test_stable_for_equal_topologies(self):
        assert network_fingerprint(validation_mlp()) == network_fingerprint(
            validation_mlp()
        )

    def test_differs_between_topologies(self):
        assert network_fingerprint(validation_mlp()) != network_fingerprint(
            jpeg_autoencoder()
        )


class TestJobSpec:
    def test_key_defaults_to_uncacheable(self):
        spec = JobSpec(kind="adhoc", payload=42)
        assert spec.key is None
