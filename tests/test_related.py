"""PRIME and ISAAC case studies (Table VII)."""

import pytest

from repro.related.isaac import (
    ISAAC_CYCLE_TIME,
    ISAAC_PIPELINE_STAGES,
    build_isaac_tile,
    simulate_isaac,
)
from repro.related.prime import (
    build_prime_ffsubarray,
    prime_config,
    simulate_prime,
)
from repro.units import MM2, US


class TestPrime:
    def test_config_matches_paper(self):
        config = prime_config()
        assert config.crossbar_size == 256
        assert config.cmos_tech == 65
        assert config.signal_bits == 6
        assert config.weight_bits == 8
        assert config.device.precision_bits == 4

    def test_ffsubarray_has_four_crossbars(self):
        """Sec. VII.E.1: four 4-bit cells store one 8-bit signed weight,
        so the 256x256 task needs exactly four crossbars."""
        accelerator = build_prime_ffsubarray()
        assert accelerator.total_crossbars == 4
        assert accelerator.total_units == 2

    def test_result_magnitudes(self):
        result = simulate_prime()
        # Table VII scale: sub-mm^2 to few-mm^2 area, sub-uJ task energy,
        # sub-us to few-us latency, high relative accuracy.
        assert 0.01 < result.area / MM2 < 10
        assert 0 < result.energy_per_task < 5e-6
        assert 0 < result.latency < 5e-6
        assert 0.85 < result.relative_accuracy <= 1.0


class TestIsaac:
    def test_tile_has_96_crossbars(self):
        accelerator = build_isaac_tile()
        assert accelerator.total_crossbars == 96

    def test_imported_adc_is_published_design(self):
        accelerator = build_isaac_tile()
        unit, _count = accelerator.banks[0]._shaped_units[0]
        assert unit.read_circuit.frequency == pytest.approx(1.2e9)

    def test_latency_is_22_pipeline_cycles(self):
        """Sec. VII.E.2: the customised latency rule."""
        result = simulate_isaac()
        assert result.latency == pytest.approx(
            ISAAC_PIPELINE_STAGES * ISAAC_CYCLE_TIME
        )
        assert result.latency / US == pytest.approx(2.2)

    def test_result_magnitudes(self):
        result = simulate_isaac()
        assert 0.05 < result.area / MM2 < 20
        assert 0 < result.energy_per_task < 1e-5
        assert 0.85 < result.relative_accuracy <= 1.0


class TestComparison:
    def test_isaac_larger_than_prime(self):
        """The ISAAC tile (96 crossbars) dwarfs a PRIME FF-subarray
        (4 crossbars) in area and task energy, as in Table VII."""
        prime, isaac = simulate_prime(), simulate_isaac()
        assert isaac.area > prime.area
        assert isaac.energy_per_task > prime.energy_per_task
        assert isaac.latency > prime.latency


class TestIsaacPipeline:
    def test_pipeline_object_matches_published_latency(self):
        from repro.related.isaac import isaac_inner_pipeline

        pipeline = isaac_inner_pipeline()
        assert pipeline.depth == 22
        assert pipeline.run_latency(1) == pytest.approx(2.2e-6)
        # Steady state: one result per 100 ns.
        assert pipeline.throughput() == pytest.approx(1e7)
