"""Property-based tests (hypothesis) on the core models and invariants."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.accuracy.interconnect import analog_error_rate
from repro.accuracy.propagation import combine_error_rates, propagate_layers
from repro.accuracy.quantization import (
    avg_digital_deviation,
    avg_error_rate,
    max_digital_deviation,
    max_error_rate,
)
from repro.config import SimConfig
from repro.dse.tradeoff import inflection_point, pareto_frontier
from repro.nn.quantize import bit_slice, dequantize, quantize, split_polarity
from repro.report import Performance
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.tech import get_memristor_model

finite_floats = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Performance algebra
# ----------------------------------------------------------------------
@st.composite
def performances(draw):
    return Performance(
        area=draw(finite_floats),
        dynamic_energy=draw(finite_floats),
        leakage_power=draw(finite_floats),
        latency=draw(finite_floats),
    )


@given(performances(), performances())
def test_serial_composition_is_commutative_and_additive(a, b):
    ab, ba = a.serial(b), b.serial(a)
    assert math.isclose(ab.area, ba.area, rel_tol=1e-12)
    assert math.isclose(ab.latency, a.latency + b.latency, rel_tol=1e-12)


@given(performances(), performances(), performances())
def test_serial_composition_is_associative(a, b, c):
    left = a.serial(b).serial(c)
    right = a.serial(b.serial(c))
    assert math.isclose(left.dynamic_energy, right.dynamic_energy,
                        rel_tol=1e-9)
    assert math.isclose(left.latency, right.latency, rel_tol=1e-9)


@given(performances(), performances())
def test_parallel_latency_is_max(a, b):
    assert a.parallel(b).latency == max(a.latency, b.latency)


@given(performances(), st.integers(min_value=0, max_value=50))
def test_replicate_matches_repeated_parallel(p, n):
    replicated = p.replicate(n)
    assert math.isclose(replicated.area, n * p.area, rel_tol=1e-9,
                        abs_tol=1e-12)
    if n:
        assert replicated.latency == p.latency


# ----------------------------------------------------------------------
# Quantization model (Eq. 12-14)
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=2, max_value=4096),
    st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_error_rates_bounded_and_ordered(k, eps):
    worst = max_error_rate(k, eps)
    average = avg_error_rate(k, eps)
    assert 0 <= average <= 1
    assert 0 <= worst <= 1
    # Eq. 14's use of level i (rather than i - 0.5) can nudge the
    # average a hair above Eq. 13's worst case for degenerate level
    # counts; one quantization step covers the discrepancy.
    assert average <= worst + 1.0 / (k - 1)


@given(
    st.integers(min_value=2, max_value=1024),
    st.floats(min_value=0, max_value=0.5, allow_nan=False),
    st.floats(min_value=0, max_value=0.5, allow_nan=False),
)
def test_max_error_rate_monotone_in_eps(k, e1, e2):
    low, high = sorted((e1, e2))
    assert max_error_rate(k, low) <= max_error_rate(k, high)


@given(
    st.integers(min_value=2, max_value=512),
    st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_deviation_formulas_match_direct_enumeration(k, eps):
    expected_avg = sum(math.floor(i * eps + 0.5) for i in range(k)) / k
    assert math.isclose(avg_digital_deviation(k, eps), expected_avg,
                        rel_tol=1e-12, abs_tol=1e-12)
    assert max_digital_deviation(k, eps) == math.floor(
        (k - 1.5) * eps + 0.5
    )


# ----------------------------------------------------------------------
# Propagation (Eq. 15)
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.floats(min_value=0, max_value=0.3, allow_nan=False),
        min_size=1, max_size=8,
    )
)
def test_propagated_error_is_monotone_nondecreasing(epsilons):
    deltas = propagate_layers(epsilons, 256)
    assert all(b >= a - 1e-12 for a, b in zip(deltas, deltas[1:]))
    assert all(0 <= d <= 1 for d in deltas)


@given(
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_combine_at_least_each_component(delta, eps):
    combined = combine_error_rates(delta, eps)
    assert combined >= max(delta, eps) - 1e-12


# ----------------------------------------------------------------------
# Analog error model (Eq. 9-11)
# ----------------------------------------------------------------------
@given(
    st.sampled_from([8, 16, 32, 64, 128, 256, 512]),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_analog_error_bounded(size, segment_resistance):
    device = get_memristor_model("RRAM")
    eps = analog_error_rate(size, size, segment_resistance, device)
    assert -1.0 < eps < 1.0


@given(st.sampled_from([8, 16, 32, 64, 128, 256]))
def test_wire_error_monotone_in_segment_resistance(size):
    device = get_memristor_model("IDEAL")
    values = [
        analog_error_rate(size, size, r, device)
        for r in (0.0, 0.1, 0.5, 2.0)
    ]
    assert values == sorted(values)


# ----------------------------------------------------------------------
# Fixed-point quantization
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.floats(min_value=-0.999, max_value=0.999, allow_nan=False),
        min_size=1, max_size=64,
    ),
    st.integers(min_value=2, max_value=12),
)
def test_quantize_round_trip_error_within_half_step(values, bits):
    array = np.asarray(values)
    # Signed fixed point saturates at (2^(b-1) - 1) / 2^(b-1); the
    # half-step bound only holds inside the representable range.
    top = (2 ** (bits - 1) - 1) / 2 ** (bits - 1)
    assume(np.all(array <= top))
    rebuilt = dequantize(quantize(array, bits), bits)
    step = 1.0 / 2 ** (bits - 1)
    assert np.max(np.abs(array - rebuilt)) <= step / 2 + 1e-12


@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1,
             max_size=64)
)
def test_polarity_split_reconstructs(levels):
    array = np.asarray(levels)
    pos, neg = split_polarity(array)
    assert np.array_equal(pos - neg, array)
    assert np.all(pos * neg == 0)  # planes never overlap


@given(
    st.lists(st.integers(min_value=0, max_value=2**12 - 1), min_size=1,
             max_size=32),
    st.integers(min_value=1, max_value=6),
)
def test_bit_slices_reassemble(levels, slice_bits):
    array = np.asarray(levels)
    slices_needed = max(1, math.ceil(12 / slice_bits))
    parts = bit_slice(array, slice_bits, slices_needed)
    rebuilt = np.zeros_like(array)
    for i, part in enumerate(parts):
        assert np.all(part < 2**slice_bits)
        rebuilt = rebuilt + (part << (i * slice_bits))
    assert np.array_equal(rebuilt, array)


# ----------------------------------------------------------------------
# Circuit solver invariants
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=10),
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
)
def test_solver_outputs_bounded_by_inputs(rows, cols, wire_r):
    rng = np.random.default_rng(rows * 100 + cols)
    resistances = rng.uniform(1e5, 1e6, size=(rows, cols))
    inputs = rng.uniform(0.0, 1.0, size=rows)
    network = CrossbarNetwork(resistances, wire_r, 1e3)
    solution = network.solve(inputs)
    assert np.all(solution.output_voltages >= -1e-9)
    assert np.all(solution.output_voltages <= inputs.max() + 1e-9)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=2, max_value=8),
)
def test_solver_charge_conservation(rows, cols):
    rng = np.random.default_rng(rows * 31 + cols)
    resistances = rng.uniform(1e5, 1e6, size=(rows, cols))
    inputs = rng.uniform(0.1, 1.0, size=rows)
    r_sense = 1e3
    solution = CrossbarNetwork(resistances, 0.5, r_sense).solve(inputs)
    into_ground = solution.output_voltages.sum() / r_sense
    assert math.isclose(
        solution.input_currents.sum(), into_ground, rel_tol=1e-6
    )


# ----------------------------------------------------------------------
# DSE utilities
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1, max_size=40,
    )
)
def test_pareto_frontier_members_are_nondominated(points):
    frontier = pareto_frontier(points)
    assert frontier  # at least one survivor
    for fx, fy in frontier:
        strictly_dominating = [
            (px, py)
            for px, py in points
            if px <= fx and py <= fy and (px < fx or py < fy)
        ]
        assert not strictly_dominating


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1, max_size=40,
    )
)
def test_inflection_point_is_a_member(points):
    assert inflection_point(points) in points


# ----------------------------------------------------------------------
# Configuration round-trips
# ----------------------------------------------------------------------
@given(
    st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512, 1024]),
    st.sampled_from([18, 22, 28, 36, 45, 65, 90]),
    st.integers(min_value=1, max_value=8),
)
def test_config_replace_never_corrupts(size, wire, bits):
    config = SimConfig().replace(
        crossbar_size=size, interconnect_tech=wire, weight_bits=bits,
        parallelism_degree=0,
    )
    assert config.crossbar_size == size
    assert config.cells_per_weight >= 1
    assert config.effective_parallelism() == size


# ----------------------------------------------------------------------
# Functional mapping algebra
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.sampled_from([8, 16, 32]),
    st.sampled_from(["RRAM", "RRAM-4BIT"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_functional_ideal_mode_always_exact(out_features, in_features,
                                            crossbar_size, model, seed):
    """For any layer shape, tiling, device precision, and weights, the
    IDEAL functional path must reproduce the fixed-point reference with
    the mapped weights, bit for bit."""
    import numpy as np

    from repro.functional import FunctionalAccelerator
    from repro.nn.networks import mlp as make_mlp

    rng = np.random.default_rng(seed)
    network = make_mlp([in_features, out_features], name="prop")
    weights = [
        rng.uniform(-1, 1, size=(out_features, in_features))
        / np.sqrt(in_features)
    ]
    config = SimConfig(
        crossbar_size=crossbar_size, memristor_model=model, weight_bits=8,
    )
    functional = FunctionalAccelerator(config, network, weights)
    inputs = rng.uniform(-1, 1, size=in_features)
    got = functional.forward(inputs)[-1]
    expected = functional.reference_forward(inputs)[-1]
    assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Persistence round-trips
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=32), min_size=2,
             max_size=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_persistence_round_trip_property(sizes, seed):
    """Any FC network + weights must survive save/load bit for bit."""
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.nn.networks import mlp as make_mlp
    from repro.nn.persistence import load_network, save_network

    rng = np.random.default_rng(seed)
    network = make_mlp(sizes, name="prop-save")
    weights = [
        rng.uniform(-1, 1, size=layer.weight_shape)
        for layer in network.layers
    ]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.npz"
        save_network(path, network, weights)
        loaded_net, loaded_weights, _meta = load_network(path)
    assert loaded_net.depth == network.depth
    assert all(
        np.array_equal(a, b) for a, b in zip(weights, loaded_weights)
    )


# ----------------------------------------------------------------------
# Fault injection invariants
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fault_count_matches_rate_statistically(rate, seed):
    """Flipped-cell counts follow the requested defect rate."""
    import numpy as np

    from repro.functional import FunctionalAccelerator
    from repro.functional.faults import inject_stuck_faults
    from repro.nn.networks import mlp as make_mlp

    rng = np.random.default_rng(seed)
    network = make_mlp([16, 8], name="prop-faults")
    weights = [rng.uniform(-1, 1, size=(8, 16)) / 4]
    functional = FunctionalAccelerator(
        SimConfig(crossbar_size=16), network, weights
    )
    total_cells = sum(
        plane.levels.size
        for bank in functional.banks
        for grid in bank.units
        for row in grid
        for unit in row
        for plane in (unit.positive, unit.negative)
        if plane is not None
    )
    flipped = inject_stuck_faults(functional, rate, rng)
    assert 0 <= flipped <= total_cells
    if rate == 0.0:
        assert flipped == 0
    if rate == 1.0:
        assert flipped == total_cells
