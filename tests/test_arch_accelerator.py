"""Level-1 Accelerator: composition, summaries, accuracy wiring."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import caffenet, mlp, validation_mlp


@pytest.fixture
def config():
    return SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)


@pytest.fixture
def accelerator(config, mlp_network):
    return Accelerator(config, mlp_network)


class TestConstruction:
    def test_one_bank_per_layer(self, accelerator, mlp_network):
        assert len(accelerator.banks) == mlp_network.depth

    def test_network_type_propagates(self, config):
        acc = Accelerator(config, caffenet())
        assert acc.config.network_type == "CNN"

    def test_depth_mismatch_rejected(self, config, mlp_network):
        with pytest.raises(ConfigError, match="network_depth"):
            Accelerator(config.replace(network_depth=7), mlp_network)

    def test_matching_depth_accepted(self, config, mlp_network):
        acc = Accelerator(
            config.replace(network_depth=mlp_network.depth), mlp_network
        )
        assert acc.config.network_depth == mlp_network.depth

    def test_totals(self, accelerator):
        assert accelerator.total_units == sum(
            b.units for b in accelerator.banks
        )
        assert accelerator.total_crossbars == 2 * accelerator.total_units


class TestPerformance:
    def test_sample_includes_interfaces(self, accelerator):
        with_bus = accelerator.sample_performance()
        banks_only = accelerator.compute_sample_performance()
        assert with_bus.latency > banks_only.latency
        assert with_bus.area > banks_only.area

    def test_sample_latency_is_sum_of_banks(self, accelerator):
        banks_only = accelerator.compute_sample_performance()
        expected = sum(
            b.sample_performance().latency for b in accelerator.banks
        )
        assert banks_only.latency == pytest.approx(expected)

    def test_pipeline_cycle_is_slowest_bank(self, config):
        acc = Accelerator(config, mlp([2048, 1024, 16]))
        slowest = max(
            b.pass_performance().latency for b in acc.banks
        )
        assert acc.pipeline_cycle_latency() == pytest.approx(slowest)

    def test_write_cost_accumulates_banks(self, accelerator):
        write = accelerator.write_performance()
        assert write.latency == pytest.approx(
            sum(b.write_performance().latency for b in accelerator.banks)
        )


class TestSummary:
    def test_summary_fields_consistent(self, accelerator):
        summary = accelerator.summary()
        sample = accelerator.sample_performance()
        assert summary.area == sample.area
        assert summary.energy_per_sample == sample.dynamic_energy
        assert summary.sample_latency == sample.latency
        assert summary.compute_latency < summary.sample_latency
        assert summary.pipeline_cycle <= summary.compute_latency
        assert summary.power > 0

    def test_relative_accuracy_complement(self, accelerator):
        summary = accelerator.summary()
        assert summary.relative_accuracy == pytest.approx(
            1 - summary.average_error_rate
        )
        assert summary.average_error_rate <= summary.worst_error_rate

    def test_energy_efficiency(self, accelerator):
        summary = accelerator.summary()
        assert summary.energy_efficiency == pytest.approx(
            1 / summary.energy_per_sample
        )


class TestAccuracyWiring:
    def test_accuracy_uses_effective_fill(self, config):
        """A 16-wide layer in 128 crossbars stresses only 16 rows, so it
        must be *more* accurate than a full 128-row layer."""
        narrow = Accelerator(config, mlp([16, 16])).accuracy()
        full = Accelerator(config, mlp([128, 128])).accuracy()
        assert narrow.analog_epsilon_worst != full.analog_epsilon_worst

    def test_deeper_networks_accumulate_error(self, config):
        shallow = Accelerator(config, mlp([512, 512])).summary()
        deep = Accelerator(
            config, mlp([512] * 7)
        ).summary()
        assert deep.worst_error_rate >= shallow.worst_error_rate


class TestReport:
    def test_report_tree_shape(self, accelerator):
        node = accelerator.report()
        names = [child.name for child in node.children]
        assert names[0] == "input_interface"
        assert names[-1] == "output_interface"
        assert any(name.startswith("bank[") for name in names)
        rendered = node.render(max_depth=2)
        assert "synapse_sub_bank" in rendered
