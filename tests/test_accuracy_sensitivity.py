"""Sensitivity analysis of the accuracy model."""

import pytest

from repro.accuracy.sensitivity import (
    PARAMETERS,
    sensitivity_analysis,
    sensitivity_sweep,
)
from repro.errors import ConfigError
from repro.tech import get_memristor_model

SEG_45NM = 0.25


@pytest.fixture
def device():
    return get_memristor_model("RRAM")


class TestReport:
    def test_all_parameters_reported(self, device):
        report = sensitivity_analysis(device, 128, SEG_45NM)
        assert set(report.sensitivities) == set(PARAMETERS)
        assert report.size == 128
        assert report.epsilon != 0

    def test_regime_change_along_the_u_curve(self, device):
        """The paper's Table V explanation, quantified: wire resistance
        dominates large crossbars, device nonlinearity small ones."""
        small, large = sensitivity_sweep(device, (8, 256), SEG_45NM)
        assert small.dominant() == "nonlinearity_v0"
        assert large.dominant() == "segment_resistance"

    def test_wire_sensitivity_positive_on_large_branch(self, device):
        report = sensitivity_analysis(device, 256, SEG_45NM)
        assert report.sensitivities["segment_resistance"] > 0

    def test_nonlinearity_sensitivity_large_on_small_branch(self, device):
        report = sensitivity_analysis(device, 8, SEG_45NM)
        assert abs(report.sensitivities["nonlinearity_v0"]) > 1.0

    def test_ideal_device_has_no_nonlinearity_sensitivity(self):
        ideal = get_memristor_model("IDEAL")
        report = sensitivity_analysis(ideal, 128, SEG_45NM)
        assert report.sensitivities["nonlinearity_v0"] == 0.0

    def test_zero_wire_sensitivity_at_zero_wire(self, device):
        report = sensitivity_analysis(device, 8, 0.0)
        assert report.sensitivities["segment_resistance"] == 0.0


class TestValidation:
    def test_invalid_size(self, device):
        with pytest.raises(ConfigError):
            sensitivity_analysis(device, 0, SEG_45NM)

    def test_invalid_step(self, device):
        with pytest.raises(ConfigError):
            sensitivity_analysis(device, 64, SEG_45NM, relative_step=0.0)
        with pytest.raises(ConfigError):
            sensitivity_analysis(device, 64, SEG_45NM, relative_step=0.9)

    def test_step_size_robustness(self, device):
        """Sensitivities stable across perturbation step sizes."""
        fine = sensitivity_analysis(device, 256, SEG_45NM,
                                    relative_step=0.005)
        coarse = sensitivity_analysis(device, 256, SEG_45NM,
                                      relative_step=0.05)
        assert fine.sensitivities["segment_resistance"] == pytest.approx(
            coarse.sensitivities["segment_resistance"], rel=0.1
        )
