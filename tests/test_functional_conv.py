"""Functional convolution bank."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import MappingError
from repro.functional import AnalogMode, FunctionalConvBank
from repro.nn.layers import ConvLayer


@pytest.fixture
def config():
    return SimConfig(
        crossbar_size=32, cmos_tech=90, interconnect_tech=45,
        weight_bits=8, signal_bits=8,
    )


@pytest.fixture
def layer():
    return ConvLayer(3, 8, kernel=3, input_size=8, padding=1, pooling=2)


@pytest.fixture
def bank(layer, config, rng):
    kernels = rng.uniform(-0.3, 0.3, size=(8, 3, 3, 3))
    return FunctionalConvBank(layer, kernels, config)


class TestShapes:
    def test_output_geometry(self, bank, layer, rng):
        feature_map = rng.uniform(-1, 1, size=(3, 8, 8))
        out = bank.forward(feature_map)
        assert out.shape == (8, layer.output_size, layer.output_size)

    def test_kernel_shape_checked(self, layer, config, rng):
        with pytest.raises(MappingError):
            FunctionalConvBank(
                layer, rng.uniform(size=(8, 3, 5, 5)), config
            )

    def test_feature_map_shape_checked(self, bank, rng):
        with pytest.raises(MappingError):
            bank.forward(rng.uniform(size=(3, 9, 9)))


class TestExactness:
    def test_ideal_matches_reference(self, bank, rng):
        """The crossbar conv must equal the fixed-point reference conv
        with the mapped kernels, bit for bit."""
        feature_map = rng.uniform(-1, 1, size=(3, 8, 8))
        assert np.array_equal(
            bank.forward(feature_map),
            bank.reference_forward(feature_map),
        )

    def test_strided_no_padding_variant(self, config, rng):
        layer = ConvLayer(2, 4, kernel=3, input_size=9, stride=2)
        kernels = rng.uniform(-0.3, 0.3, size=(4, 2, 3, 3))
        bank = FunctionalConvBank(layer, kernels, config)
        feature_map = rng.uniform(-1, 1, size=(2, 9, 9))
        assert np.array_equal(
            bank.forward(feature_map),
            bank.reference_forward(feature_map),
        )

    def test_pooling_takes_window_maximum(self, config, rng):
        layer = ConvLayer(1, 1, kernel=1, input_size=4, pooling=2,
                          activation="none")
        kernels = np.ones((1, 1, 1, 1)) * 0.5
        bank = FunctionalConvBank(layer, kernels, config)
        feature_map = np.arange(16, dtype=float).reshape(1, 4, 4) / 16
        out = bank.forward(feature_map)
        reference = bank.reference_forward(feature_map)
        assert np.array_equal(out, reference)
        # Max pooling: each output is the max of its 2x2 region.
        assert out[0, 0, 0] == reference[0, 0, 0]
        assert out[0, 1, 1] >= out[0, 0, 0]


class TestAnalogModes:
    def test_model_mode_perturbs_but_stays_close(self, bank, rng):
        feature_map = rng.uniform(-1, 1, size=(3, 8, 8))
        ideal = bank.forward(feature_map)
        noisy = bank.forward(
            feature_map, mode=AnalogMode.MODEL, rng=rng
        )
        assert not np.array_equal(ideal, noisy)
        scale = np.max(np.abs(ideal)) or 1.0
        assert np.max(np.abs(ideal - noisy)) / scale < 0.2
