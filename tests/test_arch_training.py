"""On-chip training cost and endurance model."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.training import (
    DEFAULT_WRITE_ENDURANCE,
    TrainingCostModel,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import validation_mlp


@pytest.fixture
def accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return Accelerator(config, validation_mlp())


@pytest.fixture
def model(accelerator):
    return TrainingCostModel(accelerator, update_sparsity=0.1)


class TestConstruction:
    def test_invalid_sparsity(self, accelerator):
        with pytest.raises(ConfigError):
            TrainingCostModel(accelerator, update_sparsity=0.0)
        with pytest.raises(ConfigError):
            TrainingCostModel(accelerator, update_sparsity=1.5)

    def test_invalid_endurance(self, accelerator):
        with pytest.raises(ConfigError):
            TrainingCostModel(accelerator, write_endurance=0)


class TestUpdateCost:
    def test_sparse_update_cheaper_than_full_write(self, accelerator, model):
        full = accelerator.write_performance()
        update = model.update_performance()
        assert update.dynamic_energy == pytest.approx(
            full.dynamic_energy * 0.1
        )
        assert update.latency < full.latency

    def test_denser_updates_cost_more(self, accelerator):
        sparse = TrainingCostModel(accelerator, update_sparsity=0.05)
        dense = TrainingCostModel(accelerator, update_sparsity=0.5)
        assert dense.update_performance().dynamic_energy > (
            sparse.update_performance().dynamic_energy
        )


class TestEpochCost:
    def test_epoch_combines_compute_and_updates(self, accelerator, model):
        epoch = model.epoch_performance(samples_per_epoch=100, batch_size=10)
        forward = accelerator.sample_performance()
        # At least the 2x-forward compute cost plus some update cost.
        assert epoch.dynamic_energy > 200 * forward.dynamic_energy
        assert epoch.latency > 200 * forward.latency

    def test_bigger_batches_mean_fewer_updates(self, model):
        small_batch = model.epoch_performance(1000, batch_size=1)
        big_batch = model.epoch_performance(1000, batch_size=100)
        assert big_batch.dynamic_energy < small_batch.dynamic_energy

    def test_invalid_geometry(self, model):
        with pytest.raises(ConfigError):
            model.epoch_performance(0, 1)
        with pytest.raises(ConfigError):
            model.epoch_performance(10, 0)


class TestEndurance:
    def test_endurance_horizon(self, model):
        cost = model.evaluate(samples_per_epoch=1000, batch_size=10)
        # 0.1 writes per cell per update, 1e9 endurance -> 1e10 updates.
        assert cost.endurance_updates == pytest.approx(
            DEFAULT_WRITE_ENDURANCE / 0.1
        )
        assert cost.endurance_epochs == pytest.approx(
            cost.endurance_updates / 100
        )
        assert cost.supports_run(epochs=100)
        assert not cost.supports_run(epochs=int(cost.endurance_epochs) + 1)

    def test_fragile_device_limits_training(self, accelerator):
        fragile = TrainingCostModel(
            accelerator, update_sparsity=1.0, write_endurance=1e3
        )
        cost = fragile.evaluate(samples_per_epoch=10000, batch_size=1)
        assert cost.endurance_epochs < 1.0  # cannot finish one epoch


class TestInferenceAmortisation:
    def test_write_share_vanishes_with_samples(self, model):
        """Sec. II.B.1: fixed weights amortise the write cost away."""
        early = model.inference_amortisation(samples=1)
        late = model.inference_amortisation(samples=1_000_000)
        assert late < early
        assert late < 0.05

    def test_invalid_samples(self, model):
        with pytest.raises(ConfigError):
            model.inference_amortisation(0)
