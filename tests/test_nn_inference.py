"""Reference inference with error injection."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.inference import MlpInference
from repro.nn.networks import jpeg_autoencoder, mlp


@pytest.fixture
def engine(rng):
    return MlpInference.with_random_weights(jpeg_autoencoder(), rng)


class TestConstruction:
    def test_weight_count_checked(self, rng):
        net = mlp([4, 3])
        with pytest.raises(ConfigError):
            MlpInference(net, [])

    def test_weight_shapes_checked(self):
        net = mlp([4, 3])
        with pytest.raises(ConfigError):
            MlpInference(net, [np.zeros((4, 3))])  # transposed

    def test_conv_layers_rejected(self, rng):
        from repro.nn.networks import caffenet

        with pytest.raises(ConfigError):
            MlpInference.with_random_weights(caffenet(), rng)


class TestForward:
    def test_output_shapes(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        outputs = engine.forward(inputs)
        assert len(outputs) == 2
        assert outputs[0].shape == (16,)
        assert outputs[1].shape == (64,)

    def test_deterministic_without_noise(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        a = engine.forward(inputs)[-1]
        b = engine.forward(inputs)[-1]
        assert np.array_equal(a, b)

    def test_batched_inputs(self, engine, rng):
        batch = rng.uniform(-1, 1, size=(5, 64))
        outputs = engine.forward(batch)
        assert outputs[-1].shape == (5, 64)

    def test_zero_error_injection_is_identity(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        clean = engine.forward(inputs)[-1]
        noisy = engine.forward(inputs, [0.0, 0.0], rng=rng)[-1]
        assert np.array_equal(clean, noisy)

    def test_error_injection_perturbs_output(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        clean = engine.forward(inputs)[-1]
        noisy = engine.forward(inputs, [0.2, 0.2], rng=rng)[-1]
        assert not np.array_equal(clean, noisy)

    def test_worst_case_needs_no_rng(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        out = engine.forward(inputs, [0.1, 0.1], worst_case=True)[-1]
        assert out.shape == (64,)

    def test_random_injection_requires_rng(self, engine):
        with pytest.raises(ConfigError):
            engine.forward(np.zeros(64), [0.1, 0.1])

    def test_error_rate_count_checked(self, engine, rng):
        with pytest.raises(ConfigError):
            engine.forward(np.zeros(64), [0.1], rng=rng)


class TestRelativeError:
    def test_error_grows_with_epsilon(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=(20, 64))
        small = engine.relative_output_error(inputs, [0.01, 0.01], rng=rng)
        large = engine.relative_output_error(inputs, [0.3, 0.3], rng=rng)
        assert small < large

    def test_zero_epsilon_zero_error(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        assert engine.relative_output_error(
            inputs, [0.0, 0.0], worst_case=True
        ) == 0.0

    def test_worst_case_exceeds_random(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=(20, 64))
        eps = [0.15, 0.15]
        random = engine.relative_output_error(inputs, eps, rng=rng)
        worst = engine.relative_output_error(inputs, eps, worst_case=True)
        assert worst >= random * 0.5  # worst-case band dominates on average


class TestFaultMasks:
    """Hard-fault corruption of the per-layer weight matrices."""

    def _masks(self, engine, rate, seed=0):
        from repro.faults.models import sample_fault_mask

        gen = np.random.default_rng(seed)
        return [
            sample_fault_mask(*layer.weight_shape, rate, gen,
                              mode="stuck_mixed")
            for layer in engine.network.layers
        ]

    def test_empty_masks_are_identity(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        clean = engine.forward(inputs)
        masked = engine.forward(
            inputs, layer_fault_masks=self._masks(engine, 0.0)
        )
        for a, b in zip(clean, masked):
            np.testing.assert_array_equal(a, b)

    def test_none_entries_leave_layers_intact(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        clean = engine.forward(inputs)
        masked = engine.forward(
            inputs, layer_fault_masks=[None] * len(engine.weights)
        )
        for a, b in zip(clean, masked):
            np.testing.assert_array_equal(a, b)

    def test_faults_perturb_the_output(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        clean = engine.forward(inputs)[-1]
        faulty = engine.forward(
            inputs, layer_fault_masks=self._masks(engine, 0.3, seed=4)
        )[-1]
        assert not np.array_equal(clean, faulty)

    def test_weights_are_not_mutated(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        before = [w.copy() for w in engine.weights]
        engine.forward(
            inputs, layer_fault_masks=self._masks(engine, 0.3, seed=4)
        )
        for kept, now in zip(before, engine.weights):
            np.testing.assert_array_equal(kept, now)

    def test_mask_count_checked(self, engine, rng):
        inputs = rng.uniform(-1, 1, size=64)
        with pytest.raises(ConfigError):
            engine.forward(inputs, layer_fault_masks=[None])


class TestWithFaultMasks:
    """Pre-applied masks vs per-forward corruption: same bits, one
    ``apply_mask_to_weights`` instead of one per pass."""

    def _model_and_masks(self, seed=31):
        from repro.faults.models import sample_fault_mask

        rng = np.random.default_rng(seed)
        network = mlp([12, 8, 5], name="mask-hoist")
        model = MlpInference.with_random_weights(network, rng)
        masks = [
            sample_fault_mask(out, inp, 0.15, rng)
            for out, inp in (w.shape for w in model.weights)
        ]
        inputs = rng.uniform(-1, 1, size=12)
        return model, masks, inputs

    def test_bit_identical_to_per_call_masks(self):
        model, masks, inputs = self._model_and_masks()
        hoisted = model.with_fault_masks(masks).forward(inputs)
        per_call = model.forward(inputs, layer_fault_masks=masks)
        for a, b in zip(hoisted, per_call):
            assert np.array_equal(a, b)

    def test_none_entries_leave_layers_intact(self):
        model, masks, inputs = self._model_and_masks()
        partial = [masks[0], None]
        hoisted = model.with_fault_masks(partial)
        assert hoisted.weights[1] is model.weights[1]
        assert np.array_equal(
            hoisted.forward(inputs)[-1],
            model.forward(inputs, layer_fault_masks=partial)[-1],
        )

    def test_original_model_unchanged(self):
        model, masks, inputs = self._model_and_masks()
        before = [w.copy() for w in model.weights]
        model.with_fault_masks(masks)
        for original, kept in zip(before, model.weights):
            assert np.array_equal(original, kept)

    def test_mask_count_checked(self):
        model, masks, _ = self._model_and_masks()
        with pytest.raises(ConfigError):
            model.with_fault_masks(masks[:1])
