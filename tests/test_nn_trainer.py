"""Numpy training substrate and application-level accuracy."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.functional import AnalogMode, FunctionalAccelerator
from repro.nn.networks import caffenet, mlp
from repro.nn.trainer import (
    MlpTrainer,
    classification_accuracy,
    make_cluster_dataset,
)


@pytest.fixture
def dataset(rng):
    return make_cluster_dataset(
        rng, features=16, classes=4, samples_per_class=60
    )


@pytest.fixture
def trained(rng, dataset):
    x, y = dataset
    network = mlp([16, 24, 4], name="clf")
    trainer = MlpTrainer(network, rng)
    result = trainer.train(x[:180], y[:180], epochs=30)
    return network, trainer, result, (x[180:], y[180:])


class TestDataset:
    def test_shapes_and_ranges(self, dataset):
        x, y = dataset
        assert x.shape == (240, 16)
        assert set(np.unique(y)) == {0, 1, 2, 3}
        assert np.all(np.abs(x) < 1)

    def test_seeded_reproducibility(self):
        a = make_cluster_dataset(np.random.default_rng(3))
        b = make_cluster_dataset(np.random.default_rng(3))
        assert np.array_equal(a[0], b[0])

    def test_invalid_args(self, rng):
        with pytest.raises(ConfigError):
            make_cluster_dataset(rng, classes=1)


class TestTraining:
    def test_loss_decreases(self, trained):
        _net, _trainer, result, _test = trained
        assert result.losses[-1] < result.losses[0] / 2

    def test_learns_the_task(self, trained):
        _net, trainer, _result, (x_test, y_test) = trained
        accuracy = classification_accuracy(trainer.forward, x_test, y_test)
        assert accuracy > 0.8

    def test_forward_returns_probabilities(self, trained, rng):
        _net, trainer, _result, _test = trained
        probs = trainer.forward(rng.uniform(-1, 1, size=16))
        assert probs.shape == (4,)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_relu_hidden_layers_supported(self, rng, dataset):
        x, y = dataset
        trainer = MlpTrainer(mlp([16, 24, 4], activation="relu"), rng)
        result = trainer.train(x[:180], y[:180], epochs=30,
                               learning_rate=0.2)
        assert result.losses[-1] < result.losses[0]

    def test_conv_networks_rejected(self, rng):
        with pytest.raises(ConfigError):
            MlpTrainer(caffenet(), rng)

    def test_bad_hyperparameters(self, trained, dataset):
        _net, trainer, _result, _test = trained
        x, y = dataset
        with pytest.raises(ConfigError):
            trainer.train(x, y, epochs=0)
        with pytest.raises(ConfigError):
            trainer.train(x, y, learning_rate=0)


class TestCrossbarDeployment:
    def test_trained_network_survives_the_mapping(self, trained):
        """Deploying the trained float network onto the crossbar
        substrate (IDEAL mode) must preserve classification accuracy —
        the fixed-point/mapping loss is below the task's margin."""
        network, trainer, result, (x_test, y_test) = trained
        config = SimConfig(
            crossbar_size=32, weight_bits=8, signal_bits=8,
            interconnect_tech=45,
        )
        functional = FunctionalAccelerator(config, network, result.weights)
        float_acc = classification_accuracy(
            trainer.forward, x_test, y_test
        )
        mapped_acc = classification_accuracy(
            lambda v: functional.forward(v)[-1], x_test, y_test
        )
        assert mapped_acc >= float_acc - 0.1

    def test_analog_error_costs_bounded_accuracy(self, trained, rng):
        """MODEL-mode analog error may cost accuracy, but within a
        bounded margin for this well-separated task."""
        network, _trainer, result, (x_test, y_test) = trained
        config = SimConfig(
            crossbar_size=32, weight_bits=8, signal_bits=8,
            interconnect_tech=18,  # most resistive wires
        )
        functional = FunctionalAccelerator(config, network, result.weights)
        ideal_acc = classification_accuracy(
            lambda v: functional.forward(v)[-1], x_test, y_test
        )
        noisy_acc = classification_accuracy(
            lambda v: functional.forward(
                v, mode=AnalogMode.MODEL, rng=rng
            )[-1],
            x_test, y_test,
        )
        assert noisy_acc >= ideal_acc - 0.25
