"""Weight-matrix to crossbar mapping."""

import pytest

from repro.arch.mapping import LayerMapping
from repro.config import SimConfig
from repro.errors import MappingError
from repro.nn.layers import ConvLayer, FullyConnectedLayer


def mapping_for(in_features, out_features, **config_kwargs):
    config = SimConfig(**config_kwargs)
    layer = FullyConnectedLayer(in_features, out_features)
    return LayerMapping.for_layer(layer, config)


class TestGrid:
    def test_exact_fit_single_tile(self):
        m = mapping_for(128, 128, crossbar_size=128)
        assert (m.row_blocks, m.col_blocks) == (1, 1)
        assert m.units == 1 * m.slices
        assert m.utilization == 1.0

    def test_large_layer_tiling(self):
        # The paper's 2048x1024 layer on 256 crossbars: 8 x 4 tiles.
        m = mapping_for(2048, 1024, crossbar_size=256)
        assert (m.row_blocks, m.col_blocks) == (8, 4)

    def test_partial_tiles_round_up(self):
        m = mapping_for(130, 100, crossbar_size=128)
        assert (m.row_blocks, m.col_blocks) == (2, 1)
        assert m.block_rows(0) == 128
        assert m.block_rows(1) == 2
        assert m.block_cols(0) == 100

    def test_small_layer_in_big_crossbar(self):
        m = mapping_for(16, 64, crossbar_size=256)
        assert m.units == m.slices
        assert m.typical_active_rows == 16
        assert m.typical_active_cols == 64

    def test_block_index_bounds_checked(self):
        m = mapping_for(128, 128, crossbar_size=128)
        with pytest.raises(MappingError):
            m.block_rows(1)
        with pytest.raises(MappingError):
            m.block_cols(-1)


class TestPolarityAndSlices:
    def test_prime_case_four_crossbars(self):
        """256x256 layer, 8-bit signed weights, 4-bit cells, size-256
        crossbars -> 2 units, 4 crossbars (Sec. VII.E.1)."""
        m = mapping_for(
            256, 256, crossbar_size=256,
            memristor_model="RRAM-4BIT", weight_bits=8,
        )
        assert m.slices == 2
        assert m.units == 2
        assert m.crossbars == 4

    def test_unsigned_mapping_halves_crossbars(self):
        # 4-bit weights fit one 7-bit cell either way, so polarity is
        # the only difference.
        signed = mapping_for(128, 128, weight_polarity=2, weight_bits=4)
        unsigned = mapping_for(128, 128, weight_polarity=1, weight_bits=4)
        assert signed.crossbars == 2 * unsigned.crossbars

    def test_cells_counts_full_arrays(self):
        m = mapping_for(100, 100, crossbar_size=128)
        assert m.cells == m.crossbars * 128 * 128


class TestBlockShapes:
    def test_shapes_partition_all_tiles(self):
        m = mapping_for(300, 200, crossbar_size=128)
        shapes = m.block_shapes()
        assert sum(s.count for s in shapes) == m.row_blocks * m.col_blocks

    def test_shape_cell_totals_match_weights(self):
        m = mapping_for(300, 200, crossbar_size=128)
        active = sum(s.rows * s.cols * s.count for s in m.block_shapes())
        assert active == 300 * 200

    def test_iter_blocks_consistent_with_shapes(self):
        m = mapping_for(300, 200, crossbar_size=128)
        tiles = list(m.iter_blocks())
        assert len(tiles) == m.row_blocks * m.col_blocks
        total = sum(rows * cols for _i, _j, rows, cols in tiles)
        assert total == 300 * 200

    def test_exact_grid_has_one_shape(self):
        m = mapping_for(256, 512, crossbar_size=128)
        shapes = m.block_shapes()
        assert len(shapes) == 1
        assert shapes[0].count == 2 * 4


class TestConvMapping:
    def test_conv_matrix_shape(self):
        layer = ConvLayer(64, 128, kernel=3, input_size=56, padding=1)
        m = LayerMapping.for_layer(layer, SimConfig(crossbar_size=128))
        assert m.in_features == 64 * 9
        assert m.out_features == 128
        assert m.row_blocks == 5  # ceil(576 / 128)
