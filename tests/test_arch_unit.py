"""Level-3 Computation Unit cost model."""

import math

import pytest

from repro.arch.unit import ComputationUnit
from repro.circuits import ModuleRegistry
from repro.config import SimConfig
from repro.report import Performance


@pytest.fixture
def config():
    return SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)


class TestStructure:
    def test_default_active_region_is_full(self, config):
        unit = ComputationUnit(config)
        assert unit.active_rows == unit.active_cols == 128

    def test_active_region_validated(self, config):
        with pytest.raises(ValueError):
            ComputationUnit(config, active_rows=129)
        with pytest.raises(ValueError):
            ComputationUnit(config, active_cols=0)

    def test_signed_config_has_subtractor(self, config):
        assert ComputationUnit(config).subtractor is not None
        unsigned = ComputationUnit(config.replace(weight_polarity=1))
        assert unsigned.subtractor is None

    def test_read_cycles_from_parallelism(self, config):
        full = ComputationUnit(config)  # p = 0 -> all parallel
        assert full.read_cycles == 1
        shared = ComputationUnit(config.replace(parallelism_degree=8))
        assert shared.read_cycles == 16
        assert shared.parallelism == 8


class TestComputeCost:
    def test_all_metrics_positive(self, config):
        perf = ComputationUnit(config).compute_performance()
        assert perf.area > 0
        assert perf.dynamic_energy > 0
        assert perf.leakage_power > 0
        assert perf.latency > 0

    def test_lower_parallelism_trades_area_for_latency(self, config):
        serial = ComputationUnit(
            config.replace(parallelism_degree=1)
        ).compute_performance()
        parallel = ComputationUnit(config).compute_performance()
        assert serial.area < parallel.area
        assert serial.latency > parallel.latency

    def test_serial_read_costs_more_energy(self, config):
        """Holding the crossbar through a long read phase burns more
        energy than reading everything at once (the Table IV effect)."""
        serial = ComputationUnit(
            config.replace(parallelism_degree=1)
        ).compute_performance()
        parallel = ComputationUnit(config).compute_performance()
        assert serial.dynamic_energy > parallel.dynamic_energy

    def test_polarity_doubles_crossbar_contribution(self, config):
        signed = ComputationUnit(config)
        unsigned = ComputationUnit(config.replace(weight_polarity=1))
        assert signed.compute_performance().area > (
            unsigned.compute_performance().area
        )

    def test_partial_fill_saves_energy(self, config):
        full = ComputationUnit(config).compute_performance()
        partial = ComputationUnit(
            config, active_rows=32, active_cols=32
        ).compute_performance()
        assert partial.dynamic_energy < full.dynamic_energy


class TestOtherOps:
    def test_write_scales_with_cells(self, config):
        big = ComputationUnit(config).write_performance()
        small = ComputationUnit(
            config, active_rows=16, active_cols=16
        ).write_performance()
        assert big.dynamic_energy > small.dynamic_energy
        assert big.latency > small.latency

    def test_memory_read_much_cheaper_than_compute(self, config):
        unit = ComputationUnit(config)
        assert unit.read_performance().dynamic_energy < (
            unit.compute_performance().dynamic_energy
        )


class TestCustomization:
    def test_registry_override_reaches_unit(self, config):
        registry = ModuleRegistry()
        registry.override_fixed(
            "read_circuit", Performance(area=0.0, dynamic_energy=0.0,
                                        latency=1e-9)
        )
        custom = ComputationUnit(config, registry=registry)
        reference = ComputationUnit(config)
        assert custom.compute_performance().area < (
            reference.compute_performance().area
        )

    def test_removed_dac_slot(self, config):
        """The DAC-free structure of refs [24]/[30] (Sec. III.E.2)."""
        registry = ModuleRegistry()
        registry.remove("dac")
        stripped = ComputationUnit(config, registry=registry)
        reference = ComputationUnit(config)
        assert stripped.compute_performance().area < (
            reference.compute_performance().area
        )


class TestReport:
    def test_report_lists_submodules(self, config):
        node = ComputationUnit(config).report()
        names = {child.name for child in node.children}
        assert {"crossbar", "row_decoder", "dac", "read_circuit"} <= names
        assert "p=" in node.notes
