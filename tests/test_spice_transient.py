"""RC settle-time estimation."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import SolverError
from repro.spice.solver import CrossbarNetwork
from repro.spice.transient import (
    SettleEstimate,
    estimate_settle,
    settle_time_for_config,
)
from repro.tech.cmos import CROSSBAR_SETTLE_TIME

SEG_CAP = 3e-17  # ~0.03 fF per 150 nm segment


def make_network(size, r_min=1e5, wire=0.25):
    return CrossbarNetwork(np.full((size, size), r_min), wire, 1000.0)


class TestEstimate:
    def test_matches_dense_eigensolve(self):
        """Power iteration must agree with a direct eigensolve."""
        network = make_network(6)
        matrix, _ = network._assemble(
            1.0 / network.resistances, np.zeros(6)
        )
        dense_min = np.linalg.eigvalsh(matrix.toarray())[0]
        expected_tau = 2 * SEG_CAP / dense_min
        estimate = estimate_settle(network, SEG_CAP)
        assert estimate.time_constant == pytest.approx(
            expected_tau, rel=1e-4
        )

    def test_time_constant_grows_with_array_size(self):
        taus = [
            estimate_settle(make_network(size), SEG_CAP).time_constant
            for size in (8, 16, 32)
        ]
        assert taus == sorted(taus)

    def test_higher_resistance_cells_settle_slower(self):
        fast = estimate_settle(make_network(8, r_min=1e5), SEG_CAP)
        slow = estimate_settle(make_network(8, r_min=1e6), SEG_CAP)
        assert slow.time_constant > fast.time_constant

    def test_settle_time_scales_with_bits(self):
        estimate = SettleEstimate(time_constant=1e-9,
                                  node_capacitance=SEG_CAP)
        assert estimate.settle_time(8) < estimate.settle_time(12)
        # tau * ln(2^(n+1))
        assert estimate.settle_time(8) == pytest.approx(
            1e-9 * np.log(2.0**9)
        )

    def test_invalid_args(self):
        network = make_network(4)
        with pytest.raises(SolverError):
            estimate_settle(network, 0.0)
        estimate = estimate_settle(network, SEG_CAP)
        with pytest.raises(SolverError):
            estimate.settle_time(0)


class TestDesignImplication:
    def test_array_never_limits_the_read_window(self):
        """The headline finding: the array's own RC settle is orders of
        magnitude below the 20 ns reference window — reads are limited
        by drivers and sensing, not by the crossbar."""
        for size in (32, 64):
            config = SimConfig(crossbar_size=size, interconnect_tech=45)
            settle = settle_time_for_config(config)
            assert settle < CROSSBAR_SETTLE_TIME / 100

    def test_config_wrapper_uses_signal_bits(self):
        config = SimConfig(crossbar_size=32, interconnect_tech=45)
        t8 = settle_time_for_config(config, bits=8)
        t12 = settle_time_for_config(config, bits=12)
        assert t12 > t8
