"""Stuck-at fault injection in the functional simulation."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.functional import FunctionalAccelerator
from repro.functional.faults import (
    FaultPoint,
    fault_study,
    inject_stuck_faults,
)
from repro.nn.networks import mlp
from repro.nn.trainer import (
    MlpTrainer,
    classification_accuracy,
    make_cluster_dataset,
)


@pytest.fixture
def config():
    return SimConfig(crossbar_size=32, weight_bits=8, signal_bits=8)


@pytest.fixture
def functional(config, rng):
    network = mlp([16, 24, 4], name="faulty")
    from repro.nn.workloads import random_weights

    return FunctionalAccelerator(
        config, network, random_weights(network, rng)
    )


class TestInjection:
    def test_zero_rate_flips_nothing(self, functional, rng):
        before = [
            plane.levels.copy()
            for bank in functional.banks
            for grid in bank.units
            for row in grid
            for unit in row
            for plane in (unit.positive, unit.negative)
            if plane is not None
        ]
        assert inject_stuck_faults(functional, 0.0, rng) == 0
        after = [
            plane.levels
            for bank in functional.banks
            for grid in bank.units
            for row in grid
            for unit in row
            for plane in (unit.positive, unit.negative)
            if plane is not None
        ]
        assert all(np.array_equal(a, b) for a, b in zip(before, after))

    def test_full_rate_flips_everything(self, functional, rng):
        total_cells = sum(
            plane.levels.size
            for bank in functional.banks
            for grid in bank.units
            for row in grid
            for unit in row
            for plane in (unit.positive, unit.negative)
            if plane is not None
        )
        flipped = inject_stuck_faults(functional, 1.0, rng,
                                      mode="stuck_on")
        assert flipped == total_cells

    def test_stuck_on_pins_to_top_level(self, functional, rng):
        inject_stuck_faults(functional, 1.0, rng, mode="stuck_on")
        device = functional.banks[0].device
        plane = functional.banks[0].units[0][0][0].positive
        assert np.all(plane.levels == device.levels - 1)

    def test_stuck_off_pins_to_zero(self, functional, rng):
        inject_stuck_faults(functional, 1.0, rng, mode="stuck_off")
        plane = functional.banks[0].units[0][0][0].positive
        assert np.all(plane.levels == 0)

    def test_faults_change_outputs(self, functional, rng):
        inputs = rng.uniform(-1, 1, size=16)
        clean = functional.forward(inputs)[-1]
        inject_stuck_faults(functional, 0.3, rng)
        faulty = functional.forward(inputs)[-1]
        assert not np.array_equal(clean, faulty)

    def test_invalid_args(self, functional, rng):
        with pytest.raises(ConfigError):
            inject_stuck_faults(functional, -0.1, rng)
        with pytest.raises(ConfigError):
            inject_stuck_faults(functional, 0.1, rng, mode="stuck_weird")
        with pytest.raises(ConfigError):
            inject_stuck_faults("not-a-target", 0.1, rng)


class TestFaultStudy:
    def test_accuracy_degrades_with_fault_rate(self, config, rng):
        x, y = make_cluster_dataset(
            rng, features=16, classes=4, samples_per_class=40
        )
        network = mlp([16, 24, 4], name="clf")
        trainer = MlpTrainer(network, rng)
        result = trainer.train(x[:120], y[:120], epochs=25)
        x_test, y_test = x[120:], y[120:]

        def build():
            return FunctionalAccelerator(config, network, result.weights)

        def score(accelerator):
            return classification_accuracy(
                lambda v: accelerator.forward(v)[-1], x_test, y_test
            )

        points = fault_study(
            build, score, fault_rates=(0.0, 0.02, 0.5), rng=rng
        )
        assert [p.fault_rate for p in points] == [0.0, 0.02, 0.5]
        assert points[0].cells_flipped == 0
        # Clean accuracy is high; massive fault rates destroy it.
        assert points[0].accuracy > 0.8
        assert points[-1].accuracy < points[0].accuracy
        # A 2% defect rate is survivable on this margin.
        assert points[1].accuracy > 0.5

    def test_empty_rates_rejected(self, rng):
        with pytest.raises(ConfigError):
            fault_study(lambda: None, lambda a: 0.0, (), rng)
