"""Declarative campaign files: validation, expansion, identity."""

import json

import pytest

from repro.campaign.config import CampaignConfig
from repro.errors import ConfigError, ValidationError

BASE = {
    "version": 0,
    "name": "study",
    "execution": {"numCPUs": 1, "numRuns": 2},
    "settings": {
        "regular": {
            "kind": "montecarlo",
            "montecarlo": {"trials": 2, "seed": 5, "size": 8},
        },
        "combination": {"montecarlo.sigma": [0.05, 0.1]},
    },
    "post": ["summary"],
}


def doc(**overrides):
    out = json.loads(json.dumps(BASE))
    out.update(overrides)
    return out


class TestExpansion:
    def test_combination_times_runs(self):
        config = CampaignConfig.from_dict(doc())
        assert [u.stage for u in config.units] == [
            "unit-000-run-0", "unit-000-run-1",
            "unit-001-run-0", "unit-001-run-1",
        ]
        assert [u.seed for u in config.units] == [5, 6, 5, 6]
        assert config.units[0].combination == {"montecarlo.sigma": 0.05}
        assert config.units[2].combination == {"montecarlo.sigma": 0.1}
        assert config.units[2].payload.montecarlo.sigma == 0.1

    def test_total_work_sums_unit_jobs(self):
        config = CampaignConfig.from_dict(doc())
        assert config.total_work() == 4 * 2  # 4 units x 2 trials

    def test_single_run_keeps_base_payload_untouched(self):
        d = doc(execution={"numCPUs": 1, "numRuns": 1})
        config = CampaignConfig.from_dict(d)
        assert len(config.units) == 2
        assert all(u.run == 0 for u in config.units)
        assert [u.seed for u in config.units] == [5, 5]

    def test_cartesian_product_uses_file_key_order(self):
        d = doc()
        d["settings"]["combination"] = {
            "montecarlo.sigma": [0.05, 0.1],
            "montecarlo.size": [8, 16],
        }
        d["execution"]["numRuns"] = 1
        config = CampaignConfig.from_dict(d)
        combos = [
            (u.payload.montecarlo.sigma, u.payload.montecarlo.size)
            for u in config.units
        ]
        assert combos == [(0.05, 8), (0.05, 16), (0.1, 8), (0.1, 16)]

    def test_execution_knobs_reach_unit_payloads(self):
        d = doc()
        d["execution"].update({"numCPUs": 3, "chunk_size": 2})
        config = CampaignConfig.from_dict(d)
        assert config.execution.jobs == 3
        assert all(u.payload.execution.jobs == 3 for u in config.units)
        assert all(
            u.payload.execution.chunk_size == 2 for u in config.units
        )


class TestIdentity:
    def test_engine_knobs_do_not_change_the_fingerprint(self):
        serial = CampaignConfig.from_dict(doc())
        wide = doc()
        wide["execution"]["numCPUs"] = 8
        wide["execution"]["chunk_size"] = 4
        assert CampaignConfig.from_dict(wide).fingerprint() == \
            serial.fingerprint()

    def test_result_determining_fields_do(self):
        base = CampaignConfig.from_dict(doc()).fingerprint()
        reseeded = doc()
        reseeded["settings"]["regular"]["montecarlo"]["seed"] = 6
        assert CampaignConfig.from_dict(reseeded).fingerprint() != base
        renamed = doc(name="other-study")
        assert CampaignConfig.from_dict(renamed).fingerprint() != base


class TestValidation:
    @pytest.mark.parametrize("mutate, path", [
        (lambda d: d.pop("version"), "version"),
        (lambda d: d.update(version=99), "version"),
        (lambda d: d.update(name="  "), "name"),
        (lambda d: d.pop("settings"), "settings"),
        (lambda d: d.update(bogus=1), "bogus"),
        (lambda d: d["settings"].pop("regular"), "settings.regular"),
        (lambda d: d["settings"]["regular"].update(execution={}),
         "settings.regular.execution"),
        (lambda d: d["execution"].update(numRuns=0), "execution.numRuns"),
        (lambda d: d["execution"].update(numCPUs=-1), "execution.numCPUs"),
        (lambda d: d.update(post=["unknown-hook"]), "post[0]"),
        (lambda d: d.update(post=["summary", "summary"]), "post[1]"),
        (lambda d: d["settings"]["combination"].update({"": [1]}),
         "settings.combination."),
        (lambda d: d["settings"]["combination"].update(
            {"montecarlo.size": []}), "settings.combination.montecarlo.size"),
    ])
    def test_path_addressed_rejections(self, mutate, path):
        d = doc()
        mutate(d)
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d)
        assert excinfo.value.path == path

    def test_nested_campaigns_rejected(self):
        d = doc()
        d["settings"]["regular"]["kind"] = "campaign"
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d)
        assert excinfo.value.path == "settings.regular.kind"

    def test_bad_payload_value_prefixed_to_regular(self):
        d = doc()
        d["settings"]["regular"]["montecarlo"]["trials"] = "many"
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d)
        assert excinfo.value.path == "settings.regular.montecarlo.trials"

    def test_bad_combination_value_blamed_on_the_overlay(self):
        d = doc()
        d["settings"]["combination"] = {"montecarlo.size": [8, "huge"]}
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d)
        assert excinfo.value.path == "settings.regular.montecarlo.size"

    def test_override_through_non_mapping_rejected(self):
        d = doc()
        d["settings"]["combination"] = {"kind.sub": [1]}
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d)
        assert excinfo.value.path == "settings.combination.kind.sub"

    def test_seedless_kind_rejects_multiple_runs(self):
        d = doc()
        d["settings"]["regular"] = {
            "kind": "simulate", "network": {"topology": "validation-mlp"},
        }
        d["settings"].pop("combination")
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d)
        assert excinfo.value.path == "execution.numRuns"

    def test_service_embedding_prefixes_paths(self):
        d = doc()
        d["execution"]["numRuns"] = 0
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_dict(d, path="campaign")
        assert excinfo.value.path == "campaign.execution.numRuns"


class TestFromFile:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(doc()), encoding="utf-8")
        config = CampaignConfig.from_file(str(path))
        assert config.name == "study"
        assert len(config.units) == 4

    def test_duplicate_key_in_file_rejected_with_path(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(
            '{"version": 0, "version": 1}', encoding="utf-8"
        )
        with pytest.raises(ValidationError) as excinfo:
            CampaignConfig.from_file(str(path))
        assert excinfo.value.path == "version"

    def test_json_syntax_error_is_config_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            CampaignConfig.from_file(str(path))

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            CampaignConfig.from_file(str(tmp_path / "absent.json"))

    def test_toml_form(self, tmp_path):
        tomllib = pytest.importorskip(
            "tomllib", reason="TOML campaigns need Python 3.11+"
        )
        assert tomllib is not None
        path = tmp_path / "c.toml"
        path.write_text(
            'version = 0\n'
            'name = "study"\n'
            '[execution]\n'
            'numCPUs = 1\n'
            'numRuns = 2\n'
            '[settings.regular]\n'
            'kind = "montecarlo"\n'
            '[settings.regular.montecarlo]\n'
            'trials = 2\nseed = 5\nsize = 8\n'
            '[settings.combination]\n'
            '"montecarlo.sigma" = [0.05, 0.1]\n',
            encoding="utf-8",
        )
        config = CampaignConfig.from_file(str(path))
        # The TOML spelling expands to the same study as the JSON one
        # (minus post hooks), so unit identities line up.
        json_config = CampaignConfig.from_dict(doc(post=[]))
        assert config.fingerprint() == json_config.fingerprint()

    def test_bad_toml_is_config_error(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "broken.toml"
        path.write_text("version = = 0", encoding="utf-8")
        with pytest.raises(ConfigError):
            CampaignConfig.from_file(str(path))
