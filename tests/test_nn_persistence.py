"""Network save/load round-trips."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer, FullyConnectedLayer
from repro.nn.networks import Network, mlp
from repro.nn.persistence import load_network, save_network
from repro.nn.workloads import random_weights


@pytest.fixture
def fc_bundle(rng):
    network = mlp([32, 16, 4], name="saved-mlp")
    return network, random_weights(network, rng)


class TestRoundTrip:
    def test_fc_network_round_trips(self, fc_bundle, tmp_path, rng):
        network, weights = fc_bundle
        path = save_network(
            tmp_path / "model.npz", network, weights,
            signal_bits=8, weight_bits=8,
        )
        loaded_net, loaded_weights, meta = load_network(path)
        assert loaded_net.name == "saved-mlp"
        assert loaded_net.depth == network.depth
        assert meta == {"signal_bits": 8, "weight_bits": 8}
        for original, copy in zip(weights, loaded_weights):
            assert np.array_equal(original, copy)

    def test_loaded_network_is_functionally_identical(
        self, fc_bundle, tmp_path, rng
    ):
        from repro.config import SimConfig
        from repro.functional import FunctionalAccelerator

        network, weights = fc_bundle
        path = save_network(tmp_path / "model", network, weights)
        loaded_net, loaded_weights, _meta = load_network(path)

        config = SimConfig(crossbar_size=32)
        inputs = rng.uniform(-1, 1, size=32)
        original = FunctionalAccelerator(config, network, weights)
        restored = FunctionalAccelerator(
            config, loaded_net, loaded_weights
        )
        assert np.array_equal(
            original.forward(inputs)[-1], restored.forward(inputs)[-1]
        )

    def test_conv_network_round_trips(self, tmp_path, rng):
        network = Network(
            "saved-cnn",
            (
                ConvLayer(1, 4, kernel=3, input_size=8, padding=1,
                          pooling=2),
                FullyConnectedLayer(4 * 4 * 4, 3, activation="none"),
            ),
            network_type="CNN",
        )
        weights = [
            rng.uniform(size=(4, 1, 3, 3)),
            rng.uniform(size=(3, 64)),
        ]
        path = save_network(tmp_path / "cnn.npz", network, weights)
        loaded_net, loaded_weights, _meta = load_network(path)
        conv = loaded_net.layers[0]
        assert isinstance(conv, ConvLayer)
        assert conv.pooling == 2
        assert loaded_weights[0].shape == (4, 1, 3, 3)

    def test_suffix_added_when_missing(self, fc_bundle, tmp_path):
        network, weights = fc_bundle
        path = save_network(tmp_path / "bare", network, weights)
        assert path.suffix == ".npz"
        assert path.exists()


class TestValidation:
    def test_weight_count_checked_on_save(self, fc_bundle, tmp_path):
        network, _weights = fc_bundle
        with pytest.raises(ConfigError):
            save_network(tmp_path / "bad.npz", network, [])

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ConfigError, match="not a saved network"):
            load_network(path)

    def test_shape_mismatch_rejected(self, fc_bundle, tmp_path):
        import json

        network, weights = fc_bundle
        path = save_network(tmp_path / "model.npz", network, weights)
        # Corrupt one weight array.
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive.files}
        data["weight_0"] = np.zeros((2, 2))
        np.savez(path, **data)
        with pytest.raises(ConfigError, match="shape"):
            load_network(path)
