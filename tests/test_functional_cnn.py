"""Chained functional CNN (conv stages + dense head)."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.functional import AnalogMode, FunctionalCnn
from repro.nn.layers import ConvLayer, FullyConnectedLayer
from repro.nn.networks import Network


@pytest.fixture
def tiny_cnn():
    return Network(
        "tiny-cnn",
        (
            ConvLayer(1, 4, kernel=3, input_size=8, padding=1, pooling=2),
            ConvLayer(4, 8, kernel=3, input_size=4, padding=1, pooling=2),
            FullyConnectedLayer(8 * 2 * 2, 5, activation="none"),
        ),
        network_type="CNN",
    )


@pytest.fixture
def weights(tiny_cnn, rng):
    return [
        rng.uniform(-0.3, 0.3, size=(4, 1, 3, 3)),
        rng.uniform(-0.3, 0.3, size=(8, 4, 3, 3)),
        rng.uniform(-0.3, 0.3, size=(5, 32)),
    ]


@pytest.fixture
def cnn(tiny_cnn, weights):
    return FunctionalCnn(SimConfig(crossbar_size=32), tiny_cnn, weights)


class TestConstruction:
    def test_stage_kinds(self, cnn):
        from repro.functional.bank import FunctionalBank
        from repro.functional.conv import FunctionalConvBank

        assert isinstance(cnn.stages[0], FunctionalConvBank)
        assert isinstance(cnn.stages[1], FunctionalConvBank)
        assert isinstance(cnn.stages[2], FunctionalBank)

    def test_weight_count_checked(self, tiny_cnn):
        with pytest.raises(ConfigError):
            FunctionalCnn(SimConfig(), tiny_cnn, [])

    def test_conv_after_dense_rejected_at_network_level(self):
        """The Network container already forbids the backwards shape,
        so FunctionalCnn never sees it."""
        with pytest.raises(ConfigError, match="conv after non-conv"):
            Network(
                "backwards",
                (
                    ConvLayer(1, 2, kernel=3, input_size=6, padding=1),
                    FullyConnectedLayer(2 * 6 * 6, 27, activation="none"),
                    ConvLayer(3, 2, kernel=3, input_size=3, padding=1),
                ),
                network_type="CNN",
            )


class TestEndToEnd:
    def test_ideal_mode_bit_exact(self, cnn, rng):
        feature_map = rng.uniform(-1, 1, size=(1, 8, 8))
        assert np.array_equal(
            cnn.forward(feature_map),
            cnn.reference_forward(feature_map),
        )

    def test_output_shape(self, cnn, rng):
        out = cnn.forward(rng.uniform(-1, 1, size=(1, 8, 8)))
        assert out.shape == (5,)

    def test_model_mode_stays_bounded(self, cnn, rng):
        feature_map = rng.uniform(-1, 1, size=(1, 8, 8))
        ideal = cnn.forward(feature_map)
        noisy = cnn.forward(feature_map, mode=AnalogMode.MODEL, rng=rng)
        scale = np.max(np.abs(ideal)) or 1.0
        assert np.max(np.abs(ideal - noisy)) / scale < 0.3
