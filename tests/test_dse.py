"""Design-space exploration: space, explorer, trade-offs."""

import pytest

from repro.config import SimConfig
from repro.dse.explorer import (
    DesignPoint,
    explore,
    optimal,
    optimal_table,
    pentagon_factors,
)
from repro.dse.space import DesignSpace
from repro.dse.tradeoff import (
    inflection_point,
    parallelism_sweep,
    pareto_frontier,
    size_tradeoff,
)
from repro.errors import ConfigError, ExplorationError
from repro.nn.networks import large_bank_layer


@pytest.fixture
def base_config():
    return SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)


@pytest.fixture
def small_space():
    return DesignSpace(
        crossbar_sizes=(64, 128, 256),
        parallelism_degrees=(1, 32, 256),
        interconnect_nodes=(28, 45),
    )


@pytest.fixture
def points(base_config, small_space, large_layer_network):
    return explore(base_config, large_layer_network, small_space)


class TestSpace:
    def test_default_space_matches_paper_sweep(self):
        space = DesignSpace()
        assert 4 in space.crossbar_sizes and 1024 in space.crossbar_sizes
        assert set(space.interconnect_nodes) == {18, 22, 28, 36, 45}

    def test_invalid_degrees_filtered(self, small_space):
        for size, degree, _node in small_space.valid_points():
            assert degree <= size

    def test_len_counts_valid_points(self, small_space):
        # sizes 64 (p in 1,32), 128 (1,32), 256 (1,32,256) -> 7 combos x 2 wires.
        assert len(small_space) == 14

    def test_unknown_interconnect_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace(interconnect_nodes=(10,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace(crossbar_sizes=())

    def test_configs_inherit_base(self, base_config, small_space):
        for config in small_space.configs(base_config):
            assert config.cmos_tech == 45
            assert config.weight_bits == 4


class TestExplorer:
    def test_every_valid_point_simulated(self, points, small_space):
        assert len(points) == len(small_space)

    def test_constraint_filters_points(
        self, base_config, small_space, large_layer_network
    ):
        all_points = explore(base_config, large_layer_network, small_space)
        tight = explore(
            base_config, large_layer_network, small_space,
            max_error_rate=0.03,
        )
        assert len(tight) < len(all_points)
        assert all(p.error_rate <= 0.03 for p in tight)

    def test_optimal_minimises_metric(self, points):
        best_area = optimal(points, "area")
        assert all(best_area.area <= p.area for p in points)
        best_energy = optimal(points, "energy")
        assert all(best_energy.energy <= p.energy for p in points)

    def test_optimal_accuracy_minimises_error(self, points):
        best = optimal(points, "accuracy")
        assert all(best.error_rate <= p.error_rate for p in points)

    def test_optimal_table_has_all_metrics(self, points):
        table = optimal_table(points)
        assert set(table) == {"area", "energy", "latency", "accuracy"}

    def test_empty_points_raise(self):
        with pytest.raises(ExplorationError):
            optimal([], "area")

    def test_unknown_metric_raises(self, points):
        with pytest.raises(ExplorationError):
            optimal(points, "speedup")

    def test_area_optimum_prefers_big_crossbars_low_parallelism(self, points):
        """The Table IV trend: area-optimal designs use large crossbars
        and few shared read circuits."""
        best = optimal(points, "area")
        assert best.crossbar_size == max(p.crossbar_size for p in points)
        assert best.parallelism_degree <= 32

    def test_latency_optimum_prefers_high_parallelism(self, points):
        best = optimal(points, "latency")
        assert best.parallelism_degree >= 32


class TestPentagon:
    def test_factors_normalised(self, points):
        table = optimal_table(points)
        factors = pentagon_factors(list(table.values()))
        assert len(factors) == 4
        for axis in ("reciprocal_area", "energy_efficiency",
                     "reciprocal_power", "speed"):
            values = [f[axis] for f in factors]
            assert max(values) == pytest.approx(1.0)
            assert all(0 <= v <= 1.0 for v in values)

    def test_accuracy_axis_unnormalised(self, points):
        factors = pentagon_factors([optimal(points, "accuracy")])
        assert 0 <= factors[0]["accuracy"] <= 1

    def test_empty_selection_raises(self):
        with pytest.raises(ExplorationError):
            pentagon_factors([])


class TestTradeoffs:
    def test_size_tradeoff_shapes(self, base_config, large_layer_network):
        rows = size_tradeoff(
            base_config.replace(interconnect_tech=45),
            large_layer_network,
            sizes=(256, 128, 64, 32, 16, 8),
        )
        by_size = {r.crossbar_size: r for r in rows}
        # Table V: area and energy fall monotonically with crossbar size.
        ordered = sorted(by_size)
        areas = [by_size[s].area for s in ordered]
        energies = [by_size[s].energy for s in ordered]
        assert areas == sorted(areas, reverse=True)
        assert energies == sorted(energies, reverse=True)
        # Error rate is U-shaped with an interior minimum.
        errors = [by_size[s].error_rate for s in ordered]
        best = errors.index(min(errors))
        assert 0 < best < len(errors) - 1

    def test_parallelism_sweep_normalisation(
        self, base_config, large_layer_network
    ):
        rows = parallelism_sweep(
            base_config.replace(interconnect_tech=45),
            large_layer_network,
            sizes=(128, 256),
        )
        for size in (128, 256):
            group = [r for r in rows if r.crossbar_size == size]
            assert max(r.normalized_area for r in group) == pytest.approx(1.0)
            assert max(
                r.normalized_latency for r in group
            ) == pytest.approx(1.0)
            # Latency falls as the parallelism degree rises (Fig. 7).
            ordered = sorted(group, key=lambda r: r.parallelism_degree)
            latencies = [r.latency for r in ordered]
            assert latencies == sorted(latencies, reverse=True)
            # Area rises with the parallelism degree.
            areas = [r.area for r in ordered]
            assert areas == sorted(areas)

    def test_pareto_frontier_is_nondominated(self):
        points = [(1, 10), (2, 5), (3, 7), (4, 1), (5, 2)]
        frontier = pareto_frontier(points)
        assert frontier == [(1, 10), (2, 5), (4, 1)]

    def test_inflection_point_finds_knee(self):
        # An L-shaped curve: the knee is the corner point.
        curve = [(1, 100), (2, 50), (3, 10), (10, 9), (20, 8)]
        assert inflection_point(curve) == (3, 10)

    def test_inflection_empty_raises(self):
        with pytest.raises(ExplorationError):
            inflection_point([])


class TestWeightedOptimal:
    def test_single_weight_matches_plain_optimal(self, points):
        from repro.dse.explorer import weighted_optimal

        assert weighted_optimal(points, {"area": 1.0}) == optimal(
            points, "area"
        )
        assert weighted_optimal(points, {"energy": 1.0}) == optimal(
            points, "energy"
        )

    def test_balanced_weights_compromise(self, points):
        from repro.dse.explorer import weighted_optimal

        area_opt = optimal(points, "area")
        latency_opt = optimal(points, "latency")
        balanced = weighted_optimal(
            points, {"area": 1.0, "latency": 1.0}
        )
        # The compromise never loses to either extreme on both axes.
        assert balanced.area <= latency_opt.area + 1e-18
        assert balanced.latency <= area_opt.latency + 1e-18

    def test_weights_validated(self, points):
        from repro.dse.explorer import weighted_optimal
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError):
            weighted_optimal(points, {})
        with pytest.raises(ExplorationError):
            weighted_optimal(points, {"area": -1.0})
        with pytest.raises(ExplorationError):
            weighted_optimal(points, {"area": 0.0})
        with pytest.raises(ExplorationError):
            weighted_optimal([], {"area": 1.0})


class TestBatchedParity:
    """Shape-grouped accuracy sharing returns the exact same points as
    the historical per-point evaluation, for every ``jobs`` setting."""

    def test_batched_matches_pointwise_serial(
        self, base_config, small_space, large_layer_network, points
    ):
        from repro.runtime.pool import RunPolicy
        pointwise = explore(
            base_config, large_layer_network, small_space,
            policy=RunPolicy(batch_within_chunk=False),
        )
        assert points == pointwise

    def test_batched_matches_pointwise_parallel(
        self, base_config, small_space, large_layer_network, points
    ):
        parallel = explore(
            base_config, large_layer_network, small_space, jobs=2
        )
        assert points == parallel
