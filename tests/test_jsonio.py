"""Strict JSON parsing: duplicate object keys are rejected, with paths."""

import json

import pytest

from repro.errors import ValidationError
from repro.jsonio import loads_strict


class TestLoadsStrict:
    def test_plain_documents_parse_identically(self):
        text = json.dumps({
            "kind": "faults",
            "faults": {"rates": [0.0, 0.5], "trials": 3},
            "nested": {"deep": [{"a": 1}, {"b": None}]},
        })
        assert loads_strict(text) == json.loads(text)

    def test_scalars_and_arrays(self):
        assert loads_strict("3") == 3
        assert loads_strict("[1, 2, {\"x\": true}]") == [1, 2, {"x": True}]

    def test_top_level_duplicate(self):
        with pytest.raises(ValidationError) as excinfo:
            loads_strict('{"trials": 1, "trials": 2}')
        err = excinfo.value
        assert err.path == "trials"
        assert err.value == "trials"
        assert "duplicate" in str(err)

    def test_nested_duplicate_has_dotted_path(self):
        with pytest.raises(ValidationError) as excinfo:
            loads_strict('{"faults": {"seed": 1, "seed": 2}}')
        assert excinfo.value.path == "faults.seed"

    def test_duplicate_inside_array_element(self):
        with pytest.raises(ValidationError) as excinfo:
            loads_strict('{"post": [{}, {"k": 1, "k": 2}]}')
        assert excinfo.value.path == "post[1].k"

    def test_last_binding_never_shadows_silently(self):
        # The stdlib default quietly keeps the last value; strict mode
        # must refuse rather than pick one.
        assert json.loads('{"jobs": 1, "jobs": 8}') == {"jobs": 8}
        with pytest.raises(ValidationError):
            loads_strict('{"jobs": 1, "jobs": 8}')

    def test_syntax_errors_stay_json_errors(self):
        with pytest.raises(json.JSONDecodeError):
            loads_strict("{not json")
