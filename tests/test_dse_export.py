"""DSE result serialisation."""

import json

import pytest

from repro.config import SimConfig
from repro.dse.explorer import explore, optimal
from repro.dse.export import from_json, points_to_rows, to_csv, to_json
from repro.dse.space import DesignSpace
from repro.errors import ExplorationError
from repro.nn.networks import mlp


@pytest.fixture(scope="module")
def points():
    base = SimConfig(cmos_tech=45, weight_bits=4)
    space = DesignSpace(
        crossbar_sizes=(64, 128),
        parallelism_degrees=(1, 64),
        interconnect_nodes=(45,),
    )
    return explore(base, mlp([256, 128]), space)


class TestRows:
    def test_row_per_point_with_all_fields(self, points):
        rows = points_to_rows(points)
        assert len(rows) == len(points)
        assert {"crossbar_size", "area", "worst_error_rate"} <= set(rows[0])


class TestCsv:
    def test_csv_round_trips_via_text(self, points, tmp_path):
        path = to_csv(points, tmp_path / "dse.csv")
        lines = path.read_text().splitlines()
        assert len(lines) == len(points) + 1  # header
        assert "crossbar_size" in lines[0]

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ExplorationError):
            to_csv([], tmp_path / "empty.csv")


class TestJson:
    def test_json_round_trip_preserves_everything(self, points, tmp_path):
        path = to_json(points, tmp_path / "dse.json")
        reloaded = from_json(path)
        assert len(reloaded) == len(points)
        for original, copy in zip(points, reloaded):
            assert copy.crossbar_size == original.crossbar_size
            assert copy.summary.area == pytest.approx(original.summary.area)
            assert copy.summary.worst_error_rate == pytest.approx(
                original.summary.worst_error_rate
            )

    def test_reloaded_points_rank_identically(self, points, tmp_path):
        path = to_json(points, tmp_path / "dse.json")
        reloaded = from_json(path)
        for metric in ("area", "energy", "latency", "accuracy"):
            assert optimal(reloaded, metric).crossbar_size == (
                optimal(points, metric).crossbar_size
            )

    def test_malformed_records_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"crossbar_size": 64}]))
        with pytest.raises(ExplorationError, match="malformed"):
            from_json(path)

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ExplorationError):
            from_json(path)
