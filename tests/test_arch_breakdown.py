"""Per-category area/energy breakdown."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.breakdown import CATEGORIES, accelerator_breakdown
from repro.config import SimConfig
from repro.nn.networks import caffenet, large_bank_layer, validation_mlp


@pytest.fixture
def config():
    return SimConfig(
        crossbar_size=128, cmos_tech=45, interconnect_tech=45,
        weight_bits=8, signal_bits=8,
    )


class TestTotalsMatchSummary:
    @pytest.mark.parametrize(
        "network_builder", [validation_mlp, large_bank_layer, caffenet]
    )
    def test_area_and_energy_reconcile(self, config, network_builder):
        """The breakdown must partition the summary exactly — every
        joule and square metre attributed to exactly one category."""
        accelerator = Accelerator(config, network_builder())
        breakdown = accelerator_breakdown(accelerator)
        summary = accelerator.summary()
        assert breakdown.total_area == pytest.approx(summary.area, rel=1e-9)
        assert breakdown.total_energy == pytest.approx(
            summary.energy_per_sample, rel=1e-9
        )


class TestFractions:
    def test_fractions_sum_to_one(self, config):
        breakdown = accelerator_breakdown(
            Accelerator(config, validation_mlp())
        )
        area_total = sum(
            breakdown.area_fraction(c) for c in breakdown.area
        )
        energy_total = sum(
            breakdown.energy_fraction(c) for c in breakdown.energy
        )
        assert area_total == pytest.approx(1.0)
        assert energy_total == pytest.approx(1.0)

    def test_known_categories_only(self, config):
        breakdown = accelerator_breakdown(
            Accelerator(config, caffenet())
        )
        assert set(breakdown.area) <= set(CATEGORIES)

    def test_missing_category_is_zero(self, config):
        breakdown = accelerator_breakdown(
            Accelerator(config, validation_mlp())
        )
        assert breakdown.area_fraction("pooling") == 0.0  # FC net

    def test_conv_network_has_pooling_share(self, config):
        breakdown = accelerator_breakdown(Accelerator(config, caffenet()))
        assert breakdown.area_fraction("pooling") > 0


class TestAdcDominanceClaim:
    def test_read_circuits_take_about_half_at_full_parallelism(self, config):
        """Sec. V.C (citing ISAAC): ADCs take about half of area and
        energy in fully-parallel memristor DNNs."""
        accelerator = Accelerator(
            config.replace(parallelism_degree=0), large_bank_layer()
        )
        breakdown = accelerator_breakdown(accelerator)
        assert breakdown.area_fraction("read_circuit") > 0.35
        assert breakdown.energy_fraction("read_circuit") > 0.35

    def test_sharing_read_circuits_shrinks_their_area_share(self, config):
        full = accelerator_breakdown(
            Accelerator(config.replace(parallelism_degree=0),
                        large_bank_layer())
        )
        shared = accelerator_breakdown(
            Accelerator(config.replace(parallelism_degree=4),
                        large_bank_layer())
        )
        assert shared.area_fraction("read_circuit") < (
            full.area_fraction("read_circuit")
        )


class TestRender:
    def test_render_is_a_table(self, config):
        breakdown = accelerator_breakdown(
            Accelerator(config, validation_mlp())
        )
        text = breakdown.render()
        assert "read_circuit" in text
        assert "%" in text
