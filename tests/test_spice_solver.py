"""Circuit-level crossbar solver: correctness against closed forms."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.spice.solver import (
    CrossbarNetwork,
    ideal_output_voltages,
)
from repro.tech import get_memristor_model


@pytest.fixture
def device():
    return get_memristor_model("RRAM")


class TestIdealOutputs:
    def test_single_cell_divider(self):
        """One cell + sense resistor is a plain voltage divider."""
        r_cell, r_sense, v = 1e5, 1e3, 1.0
        out = ideal_output_voltages(
            np.array([[r_cell]]), np.array([v]), r_sense
        )
        expected = v * r_sense / (r_cell + r_sense)
        assert out[0] == pytest.approx(expected)

    def test_matches_eq2_weights(self):
        """Outputs follow Eq. 1/2: c_kj = g_kj / (g_s + sum_l g_kl)."""
        rng = np.random.default_rng(7)
        resistances = rng.uniform(1e5, 1e6, size=(4, 3))
        inputs = rng.uniform(0, 1, size=4)
        r_sense = 2e3
        conductances = 1 / resistances
        g_s = 1 / r_sense
        expected = (conductances.T @ inputs) / (
            g_s + conductances.sum(axis=0)
        )
        out = ideal_output_voltages(resistances, inputs, r_sense)
        assert out == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(SolverError):
            ideal_output_voltages(np.ones((3, 3)), np.ones(2), 1e3)


class TestLinearSolve:
    def test_converges_to_ideal_as_wires_vanish(self, device):
        rng = np.random.default_rng(11)
        resistances = rng.uniform(1e5, 1e6, size=(8, 8))
        inputs = rng.uniform(0.2, 1.0, size=8)
        network = CrossbarNetwork(resistances, 1e-6, 1e3, device=None)
        solution = network.solve(inputs)
        ideal = ideal_output_voltages(resistances, inputs, 1e3)
        assert solution.output_voltages == pytest.approx(ideal, rel=1e-6)
        assert solution.iterations == 1
        assert solution.converged

    def test_wire_resistance_lowers_far_column_output(self, device):
        resistances = np.full((32, 32), device.r_min)
        inputs = np.full(32, 1.0)
        lossless = CrossbarNetwork(resistances, 1e-6, 1e3).solve(inputs)
        lossy = CrossbarNetwork(resistances, 2.0, 1e3).solve(inputs)
        # The farthest column suffers the largest IR drop.
        assert lossy.output_voltages[-1] < lossless.output_voltages[-1]
        drop = lossless.output_voltages - lossy.output_voltages
        assert drop[-1] == pytest.approx(drop.max())

    def test_energy_conservation(self):
        """Power delivered by sources equals power dissipated: the
        column currents must flow through the sense resistors."""
        rng = np.random.default_rng(3)
        resistances = rng.uniform(1e5, 5e5, size=(6, 6))
        inputs = rng.uniform(0.1, 1.0, size=6)
        r_sense = 1.5e3
        network = CrossbarNetwork(resistances, 0.5, r_sense)
        solution = network.solve(inputs)
        sense_current = solution.output_voltages / r_sense
        # KCL: total input current = total current into ground.
        assert solution.input_currents.sum() == pytest.approx(
            sense_current.sum(), rel=1e-9
        )
        assert solution.total_power > 0

    def test_superposition_in_linear_mode(self):
        """With ohmic cells the network is linear: doubling inputs
        doubles every output."""
        rng = np.random.default_rng(5)
        resistances = rng.uniform(1e5, 1e6, size=(5, 4))
        inputs = rng.uniform(0.1, 0.5, size=5)
        network = CrossbarNetwork(resistances, 1.0, 1e3)
        once = network.solve(inputs).output_voltages
        twice = network.solve(2 * inputs).output_voltages
        assert twice == pytest.approx(2 * once, rel=1e-9)

    def test_rectangular_arrays(self):
        resistances = np.full((4, 9), 2e5)
        network = CrossbarNetwork(resistances, 1.0, 1e3)
        solution = network.solve(np.full(4, 1.0))
        assert solution.output_voltages.shape == (9,)
        assert solution.cell_voltages.shape == (4, 9)


class TestNonlinearSolve:
    def test_nonlinearity_increases_output(self, device):
        """The sinh characteristic makes cells conduct harder than
        ohmic, raising the column output above the ideal value for a
        small array (the paper's negative error branch)."""
        resistances = np.full((8, 8), device.r_min)
        inputs = np.full(8, device.read_voltage)
        linear = CrossbarNetwork(resistances, 0.25, 1e3).solve(inputs)
        nonlinear = CrossbarNetwork(
            resistances, 0.25, 1e3, device=device
        ).solve(inputs)
        assert nonlinear.iterations > 1
        assert nonlinear.converged
        assert nonlinear.output_voltages[-1] > linear.output_voltages[-1]

    def test_ideal_device_short_circuits_iteration(self):
        ideal = get_memristor_model("IDEAL")
        resistances = np.full((4, 4), 2e5)
        network = CrossbarNetwork(resistances, 0.25, 1e3, device=ideal)
        solution = network.solve(np.full(4, 1.0))
        assert solution.iterations == 1

    def test_num_nodes_matches_paper_count(self):
        """Sec. VI: a circuit-level solve has 2MN voltage unknowns."""
        network = CrossbarNetwork(np.full((16, 12), 1e5), 1.0, 1e3)
        assert network.num_nodes == 2 * 16 * 12


class TestValidation:
    def test_bad_inputs_raise(self):
        with pytest.raises(SolverError):
            CrossbarNetwork(np.ones(4), 1.0, 1e3)  # 1-D
        with pytest.raises(SolverError):
            CrossbarNetwork(np.zeros((2, 2)), 1.0, 1e3)  # zero resistance
        with pytest.raises(SolverError):
            CrossbarNetwork(np.ones((2, 2)), 1.0, 0.0)  # bad sense
        with pytest.raises(SolverError):
            CrossbarNetwork(np.ones((2, 2)), -1.0, 1e3)  # negative wire

    def test_input_shape_checked(self):
        network = CrossbarNetwork(np.full((3, 3), 1e5), 1.0, 1e3)
        with pytest.raises(SolverError):
            network.solve(np.ones(4))


class TestPickleSafety:
    """repro.runtime ships solver inputs to pool workers; they must
    survive a pickle round trip with identical behaviour."""

    def test_network_round_trips(self):
        import pickle

        from repro.tech import get_memristor_model

        device = get_memristor_model("RRAM")
        resistances = np.full((4, 4), 1e5)
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        clone = pickle.loads(pickle.dumps(network))
        inputs = np.linspace(0.1, 0.4, 4)
        original = network.solve(inputs)
        copied = clone.solve(inputs)
        assert np.array_equal(original.output_voltages,
                              copied.output_voltages)

    def test_solution_round_trips(self):
        import pickle

        network = CrossbarNetwork(np.full((3, 3), 1e5), 1.0, 1e3)
        solution = network.solve(np.full(3, 0.2))
        clone = pickle.loads(pickle.dumps(solution))
        assert np.array_equal(solution.output_voltages,
                              clone.output_voltages)
