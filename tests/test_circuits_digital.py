"""Digital peripheral modules: gates, adders, neurons, pooling, buffers,
interfaces."""

import math

import pytest

from repro.circuits import gates
from repro.circuits.adder import (
    AdderModule,
    AdderTreeModule,
    ShiftAddModule,
    SubtractorModule,
)
from repro.circuits.buffers import (
    LineBufferModule,
    RegisterFileModule,
    output_line_buffer_length,
)
from repro.circuits.interface import BUS_CYCLE_TIME, IoInterfaceModule
from repro.circuits.neuron import (
    IntegrateFireNeuronModule,
    ReluNeuronModule,
    SigmoidNeuronModule,
    neuron_for_network_type,
)
from repro.circuits.pooling import MaxPoolingModule
from repro.errors import ConfigError
from repro.tech import get_cmos_node


@pytest.fixture
def cmos():
    return get_cmos_node(45)


class TestGates:
    def test_logic_performance_fields(self, cmos):
        perf = gates.logic_performance(cmos, gate_count=100, fo4_depth=10)
        assert perf.area == pytest.approx(cmos.gate_area(100))
        assert perf.latency == pytest.approx(cmos.gate_delay(10))
        assert perf.leakage_power == pytest.approx(cmos.gate_leakage(100))

    def test_evaluations_scale_energy_only(self, cmos):
        once = gates.logic_performance(cmos, 50, 5, evaluations=1)
        thrice = gates.logic_performance(cmos, 50, 5, evaluations=3)
        assert thrice.dynamic_energy == pytest.approx(3 * once.dynamic_energy)
        assert thrice.latency == once.latency

    def test_negative_inputs_rejected(self, cmos):
        with pytest.raises(ValueError):
            gates.logic_performance(cmos, -1, 1)

    def test_mux_tree_trivial_cases(self):
        assert gates.mux_tree_gates(1, 8) == 0
        assert gates.mux_tree_depth(1) == 0

    def test_lut_gates_grow_exponentially(self):
        assert gates.lut_gates(8, 8) > 10 * gates.lut_gates(4, 8)


class TestAdders:
    def test_ripple_adder_scales_linearly(self, cmos):
        a8 = AdderModule(cmos, 8).performance()
        a16 = AdderModule(cmos, 16).performance()
        assert a16.area == pytest.approx(2 * a8.area)
        assert a16.latency == pytest.approx(2 * a8.latency)

    def test_tree_depth_and_output_bits(self, cmos):
        tree = AdderTreeModule(cmos, inputs=16, bits=8)
        assert tree.depth == 4
        assert tree.output_bits == 12

    def test_tree_single_input_is_a_wire(self, cmos):
        tree = AdderTreeModule(cmos, inputs=1, bits=8)
        perf = tree.performance()
        assert perf.area == 0
        assert perf.latency == 0

    def test_tree_adder_count_matches_inputs_minus_one(self, cmos):
        # A binary reduction of N leaves uses N-1 adders; the widths
        # grow per level so area exceeds N-1 8-bit adders.
        tree = AdderTreeModule(cmos, inputs=8, bits=8)
        single = AdderModule(cmos, 8).performance()
        assert tree.performance().area >= 7 * single.area

    def test_tree_handles_non_powers_of_two(self, cmos):
        tree = AdderTreeModule(cmos, inputs=5, bits=8)
        assert tree.depth == 3
        assert tree.performance().area > 0

    def test_shift_add_single_slice_is_free(self, cmos):
        merge = ShiftAddModule(cmos, slices=1, slice_bits=4, input_bits=8)
        assert merge.performance().area == 0

    def test_shift_add_output_width(self, cmos):
        merge = ShiftAddModule(cmos, slices=2, slice_bits=4, input_bits=10)
        assert merge.output_bits == 14
        assert merge.performance().dynamic_energy > 0

    def test_subtractor_slightly_larger_than_adder(self, cmos):
        add = AdderModule(cmos, 8).performance()
        sub = SubtractorModule(cmos, 8).performance()
        assert sub.area > add.area
        assert sub.latency > add.latency


class TestNeurons:
    def test_sigmoid_lut_grows_with_output_bits(self, cmos):
        small = SigmoidNeuronModule(cmos, 8, 4).performance()
        large = SigmoidNeuronModule(cmos, 8, 8).performance()
        assert large.area > small.area

    def test_sigmoid_truncates_wide_inputs(self, cmos):
        neuron = SigmoidNeuronModule(cmos, 16, 8)
        assert neuron.address_bits == 10

    def test_relu_is_the_cheapest(self, cmos):
        relu = ReluNeuronModule(cmos, 8).performance()
        sigmoid = SigmoidNeuronModule(cmos, 8, 8).performance()
        integrate = IntegrateFireNeuronModule(cmos, 8).performance()
        assert relu.area < sigmoid.area
        assert relu.area < integrate.area

    def test_if_neuron_potential_bits_default(self, cmos):
        neuron = IntegrateFireNeuronModule(cmos, 8)
        assert neuron.potential_bits == 10

    def test_reference_neuron_selection(self, cmos):
        assert isinstance(
            neuron_for_network_type("DNN", cmos, 8, 8), SigmoidNeuronModule
        )
        assert isinstance(
            neuron_for_network_type("ANN", cmos, 8, 8), SigmoidNeuronModule
        )
        assert isinstance(
            neuron_for_network_type("CNN", cmos, 8, 8), ReluNeuronModule
        )
        assert isinstance(
            neuron_for_network_type("SNN", cmos, 8, 8),
            IntegrateFireNeuronModule,
        )

    def test_unknown_type_raises(self, cmos):
        with pytest.raises(ConfigError):
            neuron_for_network_type("RNN", cmos, 8, 8)


class TestPooling:
    def test_stage_count(self, cmos):
        pool = MaxPoolingModule(cmos, window=2, bits=8)
        assert pool.inputs == 4
        assert pool.stages == 3

    def test_window_one_is_free(self, cmos):
        pool = MaxPoolingModule(cmos, window=1, bits=8)
        assert pool.performance().area == 0

    def test_bigger_windows_cost_more(self, cmos):
        p2 = MaxPoolingModule(cmos, 2, 8).performance()
        p3 = MaxPoolingModule(cmos, 3, 8).performance()
        assert p3.area > p2.area
        assert p3.latency > p2.latency


class TestBuffers:
    def test_eq6_line_buffer_length(self):
        # L_out = W * (h - 1) + w (Eq. 6).
        assert output_line_buffer_length(28, 3, 3) == 28 * 2 + 3
        assert output_line_buffer_length(10, 1, 1) == 1

    def test_eq6_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            output_line_buffer_length(0, 3, 3)

    def test_register_file_scales_with_words(self, cmos):
        small = RegisterFileModule(cmos, 16, 8).performance()
        large = RegisterFileModule(cmos, 64, 8).performance()
        assert large.area == pytest.approx(4 * small.area)

    def test_line_buffer_lanes_multiply(self, cmos):
        one = LineBufferModule(cmos, length=59, bits=8, lanes=1).performance()
        many = LineBufferModule(cmos, length=59, bits=8, lanes=4).performance()
        assert many.area == pytest.approx(4 * one.area)
        assert many.latency == one.latency  # lanes shift in parallel


class TestInterface:
    def test_transfer_cycles(self, cmos):
        # 784 values x 8 bits over 128 lines -> 49 cycles.
        iface = IoInterfaceModule(cmos, lines=128, sample_values=784, bits=8)
        assert iface.transfer_cycles == 49
        assert iface.performance().latency == pytest.approx(
            49 * BUS_CYCLE_TIME
        )

    def test_wider_bus_is_faster(self, cmos):
        narrow = IoInterfaceModule(cmos, 32, 1024, 8).performance()
        wide = IoInterfaceModule(cmos, 256, 1024, 8).performance()
        assert wide.latency < narrow.latency

    def test_invalid_parameters(self, cmos):
        with pytest.raises(ValueError):
            IoInterfaceModule(cmos, 0, 10, 8)
