"""SimConfig validation, derived quantities, and the config-file parser."""

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.tech.memristor import CellType


class TestDefaults:
    def test_table1_defaults(self, default_config):
        assert default_config.interface_number == (128, 128)
        assert default_config.network_type == "DNN"
        assert default_config.crossbar_size == 128
        assert default_config.pooling_size == 2
        assert default_config.spacial_size == 1
        assert default_config.weight_polarity == 2
        assert default_config.cmos_tech == 90
        assert default_config.cell_type is CellType.ONE_T_ONE_R
        assert default_config.memristor_model == "RRAM"
        assert default_config.interconnect_tech == 28
        assert default_config.parallelism_degree == 0

    def test_ann_normalises_to_dnn(self):
        assert SimConfig(network_type="ANN").network_type == "DNN"

    def test_cell_type_accepts_strings(self):
        assert SimConfig(cell_type="0T1R").cell_type is CellType.CROSS_POINT


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crossbar_size": 0},
            {"crossbar_size": 100},  # not a power of two
            {"weight_polarity": 3},
            {"parallelism_degree": -1},
            {"parallelism_degree": 256, "crossbar_size": 128},
            {"pooling_size": 0},
            {"network_depth": 0},
            {"interface_number": (0, 128)},
            {"weight_bits": 0},
            {"signal_bits": 0},
            {"resistance_range": (500, 100)},
            {"resistance_range": (0, 100)},
            {"device_sigma": 0.5},
            {"network_type": "RNN"},
            {"cmos_tech": 14},
            {"interconnect_tech": 7},
            {"memristor_model": "FLASH"},
        ],
    )
    def test_bad_values_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            SimConfig(**kwargs)

    def test_interface_number_rejects_scalars(self):
        with pytest.raises(ConfigError):
            SimConfig(interface_number=128)


class TestDerived:
    def test_device_resolves_model(self, default_config):
        assert default_config.device.name == "RRAM"

    def test_resistance_range_overrides_device(self):
        config = SimConfig(resistance_range=(500, 500e3))
        assert config.device.r_min == 500
        assert config.device.r_max == 500e3

    def test_device_sigma_override(self):
        assert SimConfig(device_sigma=0.2).device.sigma == 0.2

    def test_cells_per_weight_reference(self):
        # 8-bit signed on a 7-bit device: 1 slice x 2 polarities.
        config = SimConfig(weight_bits=8, weight_polarity=2)
        assert config.bit_slices == 1
        assert config.cells_per_weight == 2

    def test_cells_per_weight_prime_style(self):
        # 8-bit signed on a 4-bit device: 2 slices x 2 polarities = 4.
        config = SimConfig(
            weight_bits=8, weight_polarity=2, memristor_model="RRAM-4BIT"
        )
        assert config.bit_slices == 2
        assert config.cells_per_weight == 4

    def test_unsigned_weights_skip_polarity_doubling(self):
        config = SimConfig(weight_bits=7, weight_polarity=1)
        assert config.cells_per_weight == config.bit_slices

    def test_read_levels(self):
        assert SimConfig(signal_bits=6).read_levels == 64

    def test_effective_parallelism_all_parallel(self):
        config = SimConfig(parallelism_degree=0, crossbar_size=128)
        assert config.effective_parallelism() == 128
        assert config.effective_parallelism(40) == 40

    def test_effective_parallelism_clamps_to_columns(self):
        config = SimConfig(parallelism_degree=64, crossbar_size=128)
        assert config.effective_parallelism(32) == 32
        assert config.effective_parallelism(128) == 64

    def test_effective_parallelism_rejects_bad_columns(self):
        with pytest.raises(ConfigError):
            SimConfig().effective_parallelism(0)

    def test_replace_returns_modified_copy(self, default_config):
        changed = default_config.replace(crossbar_size=256)
        assert changed.crossbar_size == 256
        assert default_config.crossbar_size == 128


class TestConfigFile:
    def test_parse_table1_style_text(self):
        text = """
        # MNSIM configuration
        [accelerator]
        Network_Depth = 3
        Interface_Number = [64, 32]
        [bank]
        Network_Type = ANN
        Crossbar_Size = 256
        Pooling_Size = 2
        [unit]
        Weight_Polarity = 2
        CMOS_Tech = 45nm
        Cell_Type = 1T1R
        Memristor_Model = RRAM
        Interconnect_Tech = 22
        Parallelism_Degree = 16
        Resistance_Range = [500 500k]
        Weight_Bits = 4
        Signal_Bits = 8
        """
        config = SimConfig.from_string(text)
        assert config.network_depth == 3
        assert config.interface_number == (64, 32)
        assert config.crossbar_size == 256
        assert config.cmos_tech == 45
        assert config.interconnect_tech == 22
        assert config.parallelism_degree == 16
        assert config.resistance_range == (500.0, 500e3)
        assert config.weight_bits == 4

    def test_parse_si_suffixes(self):
        config = SimConfig.from_string("Resistance_Range = [1k, 1M]")
        assert config.resistance_range == (1e3, 1e6)

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigError, match="unknown configuration key"):
            SimConfig.from_string("Frobnicate = 7")

    def test_missing_equals_raises(self):
        with pytest.raises(ConfigError, match="expected"):
            SimConfig.from_string("Crossbar_Size 128")

    def test_comments_and_blank_lines_ignored(self):
        config = SimConfig.from_string("\n# c\n; c2\nCrossbar_Size = 64 # tail\n")
        assert config.crossbar_size == 64

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "mnsim.cfg"
        path.write_text("Crossbar_Size = 32\nCMOS_Tech = 65\n")
        config = SimConfig.from_file(path)
        assert config.crossbar_size == 32
        assert config.cmos_tech == 65
