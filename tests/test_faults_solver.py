"""Circuit-level fault injection through the MNA solver.

The equivalence classes pin the *fault-free* path: a solver carrying an
empty :class:`~repro.faults.models.FaultMask` must match
:mod:`repro.spice.reference` to the same tolerances the vectorized
rewrite is held to (1e-12 linear, 1e-9 nonlinear), so fault support
cannot perturb existing results.  The behaviour classes check each
fault type changes the physics the way the model claims, and that
singular faulted systems surface as the structured ``SolverError``.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.faults.models import FaultMask
from repro.spice.reference import reference_solve
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.tech import get_memristor_model


def _random_network(device, size, seed):
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, device.levels, size=(size, size))
    resistances = device.resistance_of_level(levels)
    inputs = rng.uniform(0.1, device.read_voltage, size=size)
    return resistances, inputs


def _assert_solutions_close(actual, expected, rel):
    for field in ("output_voltages", "cell_voltages", "cell_currents",
                  "input_currents"):
        np.testing.assert_allclose(
            getattr(actual, field), getattr(expected, field),
            rtol=rel, atol=rel,
            err_msg=f"{field} diverged with an empty fault mask",
        )


class TestEmptyMaskEquivalence:
    @pytest.mark.parametrize("size", (4, 16, 32))
    def test_linear_matches_reference(self, size):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, size, seed=size)
        masked = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None,
            fault_mask=FaultMask.empty(size, size),
        )
        bare = CrossbarNetwork(resistances, 1.0, 1e3, device=None)
        _assert_solutions_close(
            masked.solve(inputs), reference_solve(bare, inputs), 1e-12
        )

    @pytest.mark.parametrize("size", (4, 16))
    def test_nonlinear_matches_reference(self, size):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, size, seed=size + 1)
        masked = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device,
            fault_mask=FaultMask.empty(size, size),
        )
        bare = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        masked_solution = masked.solve(inputs)
        reference = reference_solve(bare, inputs)
        _assert_solutions_close(masked_solution, reference, 1e-9)
        assert masked_solution.iterations == reference.iterations

    def test_no_mask_and_empty_mask_identical(self):
        device = get_memristor_model("PCM")
        resistances, inputs = _random_network(device, 8, seed=3)
        with_mask = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device,
            fault_mask=FaultMask.empty(8, 8),
        ).solve(inputs)
        without = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device
        ).solve(inputs)
        np.testing.assert_array_equal(
            with_mask.output_voltages, without.output_voltages
        )


class TestCellFaults:
    def test_stuck_cells_change_the_solution(self):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 8, seed=7)
        stuck = np.zeros((8, 8), dtype=bool)
        stuck[0, 0] = stuck[3, 4] = True
        mask = FaultMask(rows=8, cols=8, stuck_low=stuck)
        faulty = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None, fault_mask=mask
        ).solve(inputs)
        clean = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None
        ).solve(inputs)
        assert not np.allclose(
            faulty.output_voltages, clean.output_voltages
        )

    def test_programmed_resistances_preserved(self):
        """The pre-fault grid stays readable on the network object."""
        device = get_memristor_model("RRAM")
        resistances, _ = _random_network(device, 4, seed=9)
        stuck = np.zeros((4, 4), dtype=bool)
        stuck[2, 2] = True
        network = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device,
            fault_mask=FaultMask(rows=4, cols=4, stuck_low=stuck),
        )
        np.testing.assert_array_equal(
            network.programmed_resistances, resistances
        )
        assert network.resistances[2, 2] == device.r_min

    def test_open_cell_draws_no_current(self):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 6, seed=11)
        opened = np.zeros((6, 6), dtype=bool)
        opened[1, 2] = True
        mask = FaultMask(rows=6, cols=6, open_cells=opened)
        solution = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None, fault_mask=mask
        ).solve(inputs)
        assert solution.cell_currents[1, 2] == pytest.approx(0.0, abs=1e-15)
        healthy = np.abs(solution.cell_currents[~opened])
        assert healthy.min() > 1e-12  # only the open cell is dead

    def test_stuck_low_raises_output_stuck_high_lowers_it(self):
        # IDEAL is ohmic (linear solve) but carries a real [R_min,
        # R_max] window for the stuck pins to land on; the uniform
        # mid-window grid means a device=None fallback window would
        # degenerate to a single value.
        device = get_memristor_model("IDEAL")
        size = 6
        resistances = np.full((size, size),
                              device.resistance_of_level(3))
        inputs = np.full(size, device.read_voltage)
        column = np.zeros((size, size), dtype=bool)
        column[:, 0] = True
        low = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device,
            fault_mask=FaultMask(rows=size, cols=size, stuck_low=column),
        ).solve(inputs)
        high = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device,
            fault_mask=FaultMask(rows=size, cols=size, stuck_high=column),
        ).solve(inputs)
        clean = CrossbarNetwork(
            resistances, 1.0, 1e3, device=device
        ).solve(inputs)
        # Stuck-at-ON (R_min) pushes more current into the column.
        assert low.output_voltages[0] > clean.output_voltages[0]
        assert high.output_voltages[0] < clean.output_voltages[0]


class TestLineFaults:
    def test_open_wordline_starves_its_row(self):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 6, seed=13)
        mask = FaultMask(rows=6, cols=6, open_wordlines=(2,))
        solution = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None, fault_mask=mask
        ).solve(inputs)
        # The open row's input source is disconnected.
        assert solution.input_currents[2] == pytest.approx(0.0, abs=1e-15)
        row = np.abs(solution.cell_currents[2, :])
        clean = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None
        ).solve(inputs)
        assert row.max() < np.abs(clean.cell_currents[2, :]).max()

    def test_open_bitline_kills_its_output(self):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 6, seed=17)
        mask = FaultMask(rows=6, cols=6, open_bitlines=(4,))
        solution = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None, fault_mask=mask
        ).solve(inputs)
        clean = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None
        ).solve(inputs)
        # Only the segment nearest the sense amp still feeds column 4,
        # so its output collapses toward the floor.
        assert (solution.output_voltages[4]
                < 0.5 * clean.output_voltages[4])

    def test_short_lines_approach_the_ideal(self):
        """Shorted (zero-resistance) lines remove IR drop, so outputs
        move *closer* to the interconnect-free ideal."""
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 8, seed=19)
        ideal = ideal_output_voltages(resistances, inputs, 1e3)
        clean = CrossbarNetwork(
            resistances, 2.5, 1e3, device=None
        ).solve(inputs)
        shorted = CrossbarNetwork(
            resistances, 2.5, 1e3, device=None,
            fault_mask=FaultMask(
                rows=8, cols=8,
                short_wordlines=tuple(range(8)),
                short_bitlines=tuple(range(8)),
            ),
        ).solve(inputs)
        clean_gap = np.abs(ideal - clean.output_voltages).max()
        short_gap = np.abs(ideal - shorted.output_voltages).max()
        assert short_gap < clean_gap

    def test_singular_mask_raises_solver_error(self):
        """An open wordline whose cells are all open floats its nodes:
        the MNA system is singular and must surface as SolverError."""
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 4, seed=23)
        opened = np.zeros((4, 4), dtype=bool)
        opened[1, :] = True
        mask = FaultMask(
            rows=4, cols=4, open_cells=opened, open_wordlines=(1,)
        )
        with pytest.raises(SolverError):
            CrossbarNetwork(
                resistances, 1.0, 1e3, device=None, fault_mask=mask
            ).solve(inputs)

    def test_mask_shape_mismatch_rejected(self):
        device = get_memristor_model("RRAM")
        resistances, _ = _random_network(device, 4, seed=29)
        with pytest.raises(SolverError):
            CrossbarNetwork(
                resistances, 1.0, 1e3, device=None,
                fault_mask=FaultMask.empty(5, 5),
            )


class TestBatchAndFactorized:
    def test_solve_many_matches_repeated_solve(self):
        device = get_memristor_model("RRAM")
        resistances, _ = _random_network(device, 6, seed=31)
        rng = np.random.default_rng(31)
        batch = rng.uniform(0.1, 1.0, size=(4, 6))
        stuck = rng.random((6, 6)) < 0.1
        mask = FaultMask(rows=6, cols=6, stuck_low=stuck)
        network = CrossbarNetwork(
            resistances, 1.0, 1e3, device=None, fault_mask=mask
        )
        together = network.solve_many(batch)
        for k in range(4):
            single = network.solve(batch[k])
            np.testing.assert_allclose(
                together.output_voltages[k], single.output_voltages,
                rtol=1e-10, atol=1e-12,
            )
