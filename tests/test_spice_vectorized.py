"""Vectorized solver vs the loop-based reference implementation.

The rewrite of :mod:`repro.spice.solver` (one-time structural assembly,
frozen-LU iterative refinement, batched ``solve_many``) must be a pure
performance change: this suite pins it to the original solver, kept
verbatim in :mod:`repro.spice.reference` as an executable
specification.  Tolerances: 1e-12 relative for the linear (one-shot)
solve, 1e-9 for the nonlinear fixed point *with identical iteration
counts* on the random-matrix grid.  The worst-case all-``R_min``
configuration sits on a convergence knife edge (the final delta lands
within solver rounding noise of the 1e-10 tolerance), so there the
iteration count may differ by one.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.spice.reference import reference_solve
from repro.spice.solver import (
    _STRUCTURE_CACHE,
    CrossbarNetwork,
    CrossbarSolutionBatch,
    _structure_for,
)
from repro.tech import get_memristor_model

SIZES = (4, 32, 64)
DEVICES = ("RRAM", "PCM")


def _random_network(device, size, seed):
    """A random programmed crossbar + in-range input vector."""
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, device.levels, size=(size, size))
    resistances = device.resistance_of_level(levels)
    inputs = rng.uniform(0.1, device.read_voltage, size=size)
    return resistances, inputs


def _assert_solutions_close(actual, expected, rel):
    for field in ("output_voltages", "cell_voltages", "cell_currents",
                  "input_currents"):
        np.testing.assert_allclose(
            getattr(actual, field), getattr(expected, field),
            rtol=rel, atol=rel,
            err_msg=f"{field} diverged from the reference solver",
        )
    assert actual.total_power == pytest.approx(
        expected.total_power, rel=rel
    )
    assert actual.converged == expected.converged


class TestLinearEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    def test_matches_reference(self, size):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, size, seed=size)
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=None)
        _assert_solutions_close(
            network.solve(inputs), reference_solve(network, inputs),
            rel=1e-12,
        )

    def test_rectangular(self):
        rng = np.random.default_rng(17)
        resistances = rng.uniform(1e5, 1e6, size=(6, 11))
        inputs = rng.uniform(0.1, 1.0, size=6)
        network = CrossbarNetwork(resistances, 2.0, 1.5e3)
        _assert_solutions_close(
            network.solve(inputs), reference_solve(network, inputs),
            rel=1e-12,
        )


class TestNonlinearEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("name", DEVICES)
    def test_matches_reference_same_iterations(self, name, size):
        device = get_memristor_model(name)
        resistances, inputs = _random_network(device, size, seed=7 * size)
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        fast = network.solve(inputs)
        slow = reference_solve(network, inputs)
        assert fast.iterations > 1
        assert fast.iterations == slow.iterations
        _assert_solutions_close(fast, slow, rel=1e-9)

    @pytest.mark.parametrize("name", DEVICES)
    def test_worst_case_knife_edge(self, name):
        """All cells at R_min, full-scale inputs: the deepest-biased
        configuration.  Voltages still agree tightly; the fixed-point
        stop lands within rounding noise of the tolerance, so the
        iteration counts may legitimately differ by one."""
        device = get_memristor_model(name)
        size = 32
        resistances = np.full((size, size), device.r_min)
        inputs = np.full(size, device.read_voltage)
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        fast = network.solve(inputs)
        slow = reference_solve(network, inputs)
        assert abs(fast.iterations - slow.iterations) <= 1
        _assert_solutions_close(fast, slow, rel=1e-9)


class TestBatchedSolves:
    def test_linear_batch_matches_per_vector_loop(self):
        rng = np.random.default_rng(23)
        resistances = rng.uniform(1e5, 1e6, size=(16, 16))
        batch_inputs = rng.uniform(0.1, 1.0, size=(8, 16))
        network = CrossbarNetwork(resistances, 1.0, 1e3)
        batch = network.solve_many(batch_inputs)
        assert isinstance(batch, CrossbarSolutionBatch)
        assert len(batch) == 8
        for k in range(8):
            single = network.solve(batch_inputs[k])
            np.testing.assert_allclose(
                batch.output_voltages[k], single.output_voltages,
                rtol=1e-12, atol=1e-15,
            )
            np.testing.assert_allclose(
                batch[k].cell_voltages, single.cell_voltages,
                rtol=1e-12, atol=1e-15,
            )
            assert batch.iterations[k] == single.iterations
            assert batch.converged[k]

    def test_nonlinear_batch_matches_per_vector_loop(self):
        device = get_memristor_model("RRAM")
        rng = np.random.default_rng(29)
        resistances, _ = _random_network(device, 8, seed=29)
        batch_inputs = rng.uniform(0.1, device.read_voltage, size=(3, 8))
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        batch = network.solve_many(batch_inputs)
        for k in range(3):
            single = network.solve(batch_inputs[k])
            assert np.array_equal(
                batch.output_voltages[k], single.output_voltages
            )
            assert batch.iterations[k] == single.iterations

    def test_batch_shape_validation(self):
        network = CrossbarNetwork(np.full((4, 4), 1e5), 1.0, 1e3)
        with pytest.raises(SolverError):
            network.solve_many(np.ones((2, 5)))  # wrong row count
        with pytest.raises(SolverError):
            network.solve_many(np.ones(4))  # not a batch


class TestSingularSystem:
    def test_raises_structured_solver_error(self):
        """All cells open + infinite wire resistance: the MNA matrix is
        exactly singular, and the failure must name the configuration
        (this replaced dead except-RuntimeError code around spsolve,
        which raised scipy warnings instead)."""
        network = CrossbarNetwork(np.full((2, 2), np.inf), np.inf, 1e3)
        with pytest.raises(SolverError, match="singular MNA system"):
            network.solve(np.ones(2))
        with pytest.raises(SolverError, match="2x2 crossbar"):
            network.solve(np.ones(2))


class TestVectorizedPathSmoke:
    """Fast CI smoke: the structural fast path is actually in use and
    produces finite physics.  No timing thresholds here — speedups are
    measured (and asserted) in ``benchmarks/test_spice_solver_perf.py``.
    """

    def test_structure_cache_populated_and_shared(self):
        _STRUCTURE_CACHE.pop((5, 7), None)
        a = CrossbarNetwork(np.full((5, 7), 1e5), 1.0, 1e3)
        a.solve(np.full(5, 0.3))
        assert (5, 7) in _STRUCTURE_CACHE
        b = CrossbarNetwork(np.full((5, 7), 2e5), 1.0, 1e3)
        assert b.structure is a.structure  # shared, not rebuilt
        assert _structure_for(5, 7) is a.structure

    def test_outputs_finite(self):
        device = get_memristor_model("RRAM")
        resistances, inputs = _random_network(device, 16, seed=3)
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        batch = network.solve_many(
            np.stack([inputs, 0.5 * inputs, np.zeros_like(inputs)])
        )
        assert np.all(np.isfinite(batch.output_voltages))
        assert np.all(np.isfinite(batch.total_power))
        assert np.all(batch.converged)


class TestMonteCarloRegression:
    def test_parallel_bit_for_bit(self):
        """``jobs=2`` must reproduce the serial sweep exactly — the
        batched-solve rework must not perturb the runtime-engine
        equivalence guarantee."""
        from repro.accuracy.montecarlo import run_monte_carlo

        device = get_memristor_model("RRAM")
        serial = run_monte_carlo(device, 8, 2.0, seed=13, trials=6)
        parallel = run_monte_carlo(device, 8, 2.0, seed=13, trials=6,
                                   jobs=2)
        assert np.array_equal(serial.samples, parallel.samples)

    def test_batched_trials_extend_samples(self):
        """``inputs_per_trial > 1`` adds extra random input vectors per
        sampled resistance matrix through ``solve_many``; the first
        vector of each trial is the same one the default protocol
        draws, so the sample set extends it (up to the last-bit BLAS
        difference between the batched and single-vector ideal
        divider)."""
        from repro.accuracy.montecarlo import run_monte_carlo

        device = get_memristor_model("RRAM")
        base = run_monte_carlo(device, 8, 2.0, seed=31, trials=3)
        widened = run_monte_carlo(device, 8, 2.0, seed=31, trials=3,
                                  inputs_per_trial=4)
        assert widened.samples.size == 4 * base.samples.size
        np.testing.assert_allclose(
            widened.samples.reshape(3, 4, 8)[:, 0, :].ravel(),
            base.samples, rtol=1e-12, atol=1e-15,
        )
