"""The job executor: ordering, parallel equivalence, faults, fallback.

Worker functions live at module level because the process-pool path
pickles them; the deliberately-unpicklable case uses a lambda.
"""

import os
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError, JobExecutionError, MappingError
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import JobSpec
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy, run_jobs


def _specs(payloads, keyed=False):
    return [
        JobSpec(kind="test", payload=p, key=f"key-{p}" if keyed else None)
        for p in payloads
    ]


def _square(x):
    return x * x


def _fail_always(x):
    raise ValueError(f"boom on {x}")


def _fail_domain(x):
    raise MappingError("layer does not fit")


def _die(x):
    os._exit(13)


def _sleep(x):
    time.sleep(3.0)
    return x


def _flaky(path_str):
    """Fails on the first attempt, succeeds once the marker exists."""
    marker = Path(path_str)
    if not marker.exists():
        marker.touch()
        raise RuntimeError("transient failure")
    return "recovered"


def _count_calls(path_str):
    """Appends one byte per invocation so tests can count executions."""
    with open(path_str, "a", encoding="utf-8") as handle:
        handle.write("x")
    return "ran"


def _square_batch(payloads):
    """Vectorized counterpart of ``_square`` (the bit-identity contract)."""
    return [p * p for p in payloads]


def _short_batch(payloads):
    """Violates the one-result-per-payload contract."""
    return [p * p for p in payloads][:-1]


def _domain_error_batch(payloads):
    raise MappingError("layer does not fit")


def _poison_batch(payloads):
    raise AssertionError("batch worker must not run")


def _flaky_batch(payloads):
    """Whole-group failure on the first attempt, then recovers."""
    marker = Path(payloads[0])
    if not marker.exists():
        marker.touch()
        raise RuntimeError("transient batch failure")
    return ["recovered"] * len(payloads)


class TestPolicy:
    def test_defaults_are_serial(self):
        assert RunPolicy().worker_count == 1

    def test_zero_jobs_means_all_cores(self):
        assert RunPolicy(jobs=0).worker_count == (os.cpu_count() or 1)

    @pytest.mark.parametrize("kwargs", [
        {"jobs": -1}, {"chunk_size": 0}, {"timeout": 0}, {"retries": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RunPolicy(**kwargs)


class TestSerial:
    def test_results_in_input_order(self):
        assert run_jobs(_square, _specs([3, 1, 2])) == [9, 1, 4]

    def test_empty_job_list(self):
        assert run_jobs(_square, []) == []

    def test_domain_error_propagates_unwrapped(self):
        with pytest.raises(MappingError):
            run_jobs(_fail_domain, _specs([1]))

    def test_infra_error_becomes_structured(self):
        with pytest.raises(JobExecutionError) as info:
            run_jobs(_fail_always, _specs([1]), policy=RunPolicy(retries=1))
        message = str(info.value)
        assert "2 attempt(s)" in message
        assert "boom" in message
        assert "Traceback" not in message

    def test_retry_counts_in_metrics(self, tmp_path):
        marker = tmp_path / "marker"
        metrics = RunMetrics()
        out = run_jobs(
            _flaky, _specs([str(marker)]),
            policy=RunPolicy(retries=2), metrics=metrics,
        )
        assert out == ["recovered"]
        assert metrics.counters["worker_failures"] == 1
        assert metrics.counters["retries"] == 1


class TestParallel:
    def test_matches_serial_exactly(self):
        payloads = list(range(23))
        serial = run_jobs(_square, _specs(payloads))
        parallel = run_jobs(
            _square, _specs(payloads),
            policy=RunPolicy(jobs=3, chunk_size=4),
        )
        assert parallel == serial

    def test_mode_recorded(self):
        metrics = RunMetrics()
        run_jobs(_square, _specs(list(range(8))),
                 policy=RunPolicy(jobs=2), metrics=metrics)
        assert metrics.mode == "process"
        assert metrics.workers == 2

    def test_unpicklable_worker_falls_back_to_serial(self):
        metrics = RunMetrics()
        out = run_jobs(
            lambda x: x + 1, _specs([1, 2, 3]),
            policy=RunPolicy(jobs=2), metrics=metrics,
        )
        assert out == [2, 3, 4]
        assert metrics.mode == "serial"

    def test_domain_error_propagates_unwrapped(self):
        with pytest.raises(MappingError):
            run_jobs(_fail_domain, _specs([1, 2, 3, 4]),
                     policy=RunPolicy(jobs=2, chunk_size=1))


class TestFaultInjection:
    """Acceptance: killed/failed workers retry, then fail structured."""

    def test_killed_worker_retries_then_structured_error(self):
        metrics = RunMetrics()
        start = time.perf_counter()
        with pytest.raises(JobExecutionError) as info:
            run_jobs(
                _die, _specs([1, 2]),
                policy=RunPolicy(jobs=2, chunk_size=1, retries=1),
                metrics=metrics,
            )
        elapsed = time.perf_counter() - start
        assert elapsed < 60  # never a hang
        assert "attempt(s)" in str(info.value)
        assert metrics.counters["worker_failures"] >= 1
        assert metrics.counters["retries"] >= 1

    def test_timeout_trips_and_surfaces(self):
        start = time.perf_counter()
        with pytest.raises(JobExecutionError) as info:
            run_jobs(
                _sleep, _specs([1, 2]),
                policy=RunPolicy(jobs=2, chunk_size=1, timeout=0.2,
                                 retries=0),
            )
        elapsed = time.perf_counter() - start
        assert elapsed < 2.5  # the 3 s sleeps were abandoned, not awaited
        assert "TimeoutError" in str(info.value)

    def test_flaky_chunk_recovers_in_parallel(self, tmp_path):
        marker = tmp_path / "marker"
        out = run_jobs(
            _flaky, _specs([str(marker)] * 2),
            policy=RunPolicy(jobs=2, chunk_size=2, retries=2),
        )
        assert out == ["recovered", "recovered"]


class TestCacheIntegration:
    def test_second_run_never_executes(self, tmp_path):
        counter = tmp_path / "calls"
        cache = ResultCache(tmp_path / "cache")
        specs = [
            JobSpec(kind="test", payload=str(counter), key=f"k{i}")
            for i in range(4)
        ]
        first = run_jobs(_count_calls, specs, cache=cache)
        assert counter.read_text() == "x" * 4
        metrics = RunMetrics()
        second = run_jobs(_count_calls, specs, cache=cache, metrics=metrics)
        assert second == first == ["ran"] * 4
        assert counter.read_text() == "x" * 4  # untouched
        assert metrics.counters["cache_hits"] == 4
        assert "execute" not in metrics.stages

    def test_unkeyed_jobs_bypass_cache(self, tmp_path):
        counter = tmp_path / "calls"
        cache = ResultCache(tmp_path / "cache")
        specs = _specs([str(counter)] * 2)  # key=None
        run_jobs(_count_calls, specs, cache=cache)
        run_jobs(_count_calls, specs, cache=cache)
        assert counter.read_text() == "x" * 4
        assert cache.stats().entries == 0


class TestBatchWorker:
    """Vectorized chunk execution (DESIGN.md S22): same results, same
    error/retry/cache semantics, just fewer worker calls."""

    def test_serial_batched_matches_pointwise(self):
        payloads = list(range(17))
        pointwise = run_jobs(_square, _specs(payloads))
        batched = run_jobs(_square, _specs(payloads),
                           batch_worker=_square_batch)
        assert batched == pointwise

    def test_parallel_batched_matches_serial(self):
        payloads = list(range(23))
        serial = run_jobs(_square, _specs(payloads))
        batched = run_jobs(
            _square, _specs(payloads),
            policy=RunPolicy(jobs=3, chunk_size=4),
            batch_worker=_square_batch,
        )
        assert batched == serial

    def test_batch_within_chunk_off_forces_pointwise(self):
        out = run_jobs(
            _square, _specs([1, 2, 3]),
            policy=RunPolicy(batch_within_chunk=False),
            batch_worker=_poison_batch,  # would raise if ever called
        )
        assert out == [1, 4, 9]

    def test_batched_jobs_counted_in_metrics(self):
        metrics = RunMetrics()
        run_jobs(_square, _specs(list(range(6))),
                 batch_worker=_square_batch, metrics=metrics)
        assert metrics.counters["batched_jobs"] == 6

    def test_length_contract_enforced(self):
        with pytest.raises(JobExecutionError) as info:
            run_jobs(_square, _specs([1, 2, 3]),
                     policy=RunPolicy(retries=0),
                     batch_worker=_short_batch)
        assert "batch worker" in str(info.value)

    def test_domain_error_propagates_unwrapped(self):
        with pytest.raises(MappingError):
            run_jobs(_square, _specs([1, 2, 3]),
                     policy=RunPolicy(retries=2),
                     batch_worker=_domain_error_batch)

    def test_flaky_batch_group_retries_whole(self, tmp_path):
        marker = tmp_path / "marker"
        metrics = RunMetrics()
        out = run_jobs(
            _flaky, _specs([str(marker)] * 3),
            policy=RunPolicy(retries=2),
            batch_worker=_flaky_batch, metrics=metrics,
        )
        assert out == ["recovered"] * 3
        assert metrics.counters["retries"] == 1

    def test_cache_hits_skip_batch_worker(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = _specs([1, 2, 3], keyed=True)
        first = run_jobs(_square, specs, cache=cache,
                         batch_worker=_square_batch)
        # Second run replays from cache; the poison worker proves no
        # batch (or point-wise) execution happens at all.
        second = run_jobs(_square, specs, cache=cache,
                          batch_worker=_poison_batch)
        assert second == first == [1, 4, 9]

    def test_unpicklable_batch_worker_falls_back_to_serial(self):
        metrics = RunMetrics()
        out = run_jobs(
            _square, _specs([1, 2, 3]),
            policy=RunPolicy(jobs=2),
            batch_worker=lambda ps: [p * p for p in ps],
            metrics=metrics,
        )
        assert out == [1, 4, 9]
        assert metrics.mode == "serial"
