"""Run instrumentation: stage timing, counters, persistence, rendering."""

import time

import pytest

from repro.report import format_run_metrics
from repro.runtime.metrics import RunMetrics


class TestStages:
    def test_stage_accumulates(self):
        metrics = RunMetrics()
        for _ in range(2):
            with metrics.stage("execute"):
                time.sleep(0.01)
        assert metrics.stages["execute"] >= 0.02
        assert metrics.total_seconds == pytest.approx(
            sum(metrics.stages.values())
        )

    def test_stage_records_even_on_error(self):
        metrics = RunMetrics()
        with pytest.raises(RuntimeError):
            with metrics.stage("execute"):
                raise RuntimeError("boom")
        assert "execute" in metrics.stages


class TestCounters:
    def test_count_accumulates(self):
        metrics = RunMetrics()
        metrics.count("jobs_total", 5)
        metrics.count("jobs_total")
        assert metrics.counters["jobs_total"] == 6

    def test_throughput(self):
        metrics = RunMetrics()
        metrics.stages["execute"] = 2.0
        metrics.counters["jobs_executed"] = 10
        assert metrics.jobs_per_second == pytest.approx(5.0)

    def test_idle_throughput_is_zero(self):
        assert RunMetrics().jobs_per_second == 0.0


class TestPersistence:
    def test_round_trip(self):
        metrics = RunMetrics(
            stages={"execute": 1.25},
            counters={"jobs_total": 7, "cache_hits": 3},
            mode="process",
            workers=4,
        )
        assert RunMetrics.from_dict(metrics.to_dict()) == metrics

    def test_save_load(self, tmp_path):
        metrics = RunMetrics(stages={"execute": 0.5},
                             counters={"jobs_total": 2})
        path = metrics.save(tmp_path / "deep" / "last_run.json")
        assert RunMetrics.load(path) == metrics


class TestRendering:
    def test_format_run_metrics(self):
        metrics = RunMetrics(
            stages={"execute": 0.5, "cache-lookup": 0.01},
            counters={"jobs_total": 10, "jobs_executed": 8,
                      "cache_hits": 2},
            mode="process",
            workers=4,
        )
        text = format_run_metrics(metrics)
        assert "execution mode" in text
        assert "process" in text
        assert "jobs total" in text
        assert "execute time" in text
        assert "throughput" in text

    def test_accepts_plain_mapping(self):
        text = format_run_metrics(RunMetrics().to_dict())
        assert "serial" in text
