"""Network container and built-in topologies."""

import pytest

from repro.errors import ConfigError
from repro.nn.layers import ConvLayer, FullyConnectedLayer
from repro.nn.networks import (
    Network,
    caffenet,
    jpeg_autoencoder,
    large_bank_layer,
    mlp,
    validation_mlp,
    vgg16,
)


class TestNetwork:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Network(name="empty", layers=())

    def test_fc_chain_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="input mismatch"):
            Network(
                "bad",
                (FullyConnectedLayer(10, 20), FullyConnectedLayer(21, 5)),
            )

    def test_conv_channel_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="channel mismatch"):
            Network(
                "bad",
                (
                    ConvLayer(3, 16, kernel=3, input_size=32, padding=1),
                    ConvLayer(8, 16, kernel=3, input_size=32, padding=1),
                ),
                network_type="CNN",
            )

    def test_conv_feature_map_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="feature-map mismatch"):
            Network(
                "bad",
                (
                    ConvLayer(3, 16, kernel=3, input_size=32, padding=1,
                              pooling=2),
                    ConvLayer(16, 16, kernel=3, input_size=32, padding=1),
                ),
                network_type="CNN",
            )

    def test_conv_after_fc_rejected(self):
        with pytest.raises(ConfigError, match="conv after non-conv"):
            Network(
                "bad",
                (
                    FullyConnectedLayer(10, 27),
                    ConvLayer(3, 4, kernel=3, input_size=3),
                ),
            )

    def test_iteration_and_len(self):
        net = mlp([4, 3, 2])
        assert len(net) == 2
        assert [l.weight_shape for l in net] == [(3, 4), (2, 3)]


class TestBuilders:
    def test_mlp_layer_count(self):
        assert mlp([10, 20, 30]).depth == 2

    def test_mlp_needs_two_levels(self):
        with pytest.raises(ConfigError):
            mlp([10])

    def test_validation_mlp_matches_table2_workload(self):
        net = validation_mlp()
        assert net.depth == 2
        assert all(l.weight_shape == (128, 128) for l in net)

    def test_jpeg_autoencoder_shape(self):
        net = jpeg_autoencoder()
        assert [l.weight_shape for l in net] == [(16, 64), (64, 16)]

    def test_large_bank_layer_shape(self):
        net = large_bank_layer()
        assert net.depth == 1
        assert net.layers[0].weight_shape == (1024, 2048)

    def test_caffenet_structure(self):
        net = caffenet()
        assert net.network_type == "CNN"
        assert net.depth == 8
        conv_layers = [l for l in net if isinstance(l, ConvLayer)]
        assert len(conv_layers) == 5
        # conv5 output (256 x 6 x 6) feeds fc6.
        assert net.layers[5].weight_shape == (4096, 9216)

    def test_vgg16_structure(self):
        net = vgg16()
        assert net.depth == 16
        conv_layers = [l for l in net if isinstance(l, ConvLayer)]
        assert len(conv_layers) == 13
        assert net.layers[13].weight_shape == (4096, 25088)
        assert net.output_values == 1000
        assert net.input_values == 3 * 224 * 224

    def test_vgg16_feature_map_chain(self):
        """Every conv layer's input matches its predecessor's output."""
        net = vgg16()
        convs = [l for l in net if isinstance(l, ConvLayer)]
        for prev, cur in zip(convs, convs[1:]):
            assert cur.input_size == prev.output_size
            assert cur.in_channels == prev.out_channels

    def test_total_weights_vgg16(self):
        # VGG-16 has ~138 M parameters (ex biases).
        assert 130e6 < vgg16().total_weights < 140e6
