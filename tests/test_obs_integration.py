"""Observability wired through the engine, solver and facade."""

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import trace
from repro.runtime.jobs import JobSpec, content_key
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy, run_jobs


@pytest.fixture(autouse=True)
def _clean_obs():
    trace.disable()
    trace.clear()
    trace.activate(None)
    obs.REGISTRY.reset()
    yield
    trace.disable()
    trace.clear()
    trace.activate(None)
    obs.REGISTRY.reset()


def _square(task):
    return task * task


def _slow_square(task):
    # Slow enough that one worker cannot drain every chunk before the
    # second one wakes up — the test needs spans from >= 2 pids.
    import time
    time.sleep(0.05)
    return task * task


def _specs(n):
    return [
        JobSpec(kind="square", payload=i, key=content_key("square", i))
        for i in range(n)
    ]


class TestEnginePropagation:
    def test_serial_run_produces_nested_spans(self):
        obs.enable()
        run_jobs(_square, _specs(3))
        names = [s["name"] for s in trace.spans()]
        assert names.count("runtime.job") == 3
        assert "runtime.run_jobs" in names

    def test_parallel_run_merges_worker_spans(self):
        """Worker spans come back parented under their chunk span and
        carry worker (not dispatcher) pids — the cross-process
        propagation contract."""
        obs.enable()
        policy = RunPolicy(jobs=2, chunk_size=1)
        results = run_jobs(_slow_square, _specs(4), policy=policy)
        assert results == [0, 1, 4, 9]

        spans = trace.spans()
        by_id = {s["span_id"]: s for s in spans}
        chunk_spans = [s for s in spans if s["name"] == "runtime.chunk"]
        job_spans = [s for s in spans if s["name"] == "runtime.job"]
        assert len(chunk_spans) == 4
        assert len(job_spans) == 4
        for job in job_spans:
            parent = by_id[job["parent_id"]]
            assert parent["name"] == "runtime.chunk"

        worker_pids = {s["pid"] for s in job_spans}
        dispatcher_pids = {s["pid"] for s in chunk_spans}
        assert len(worker_pids) >= 2
        assert not (worker_pids & dispatcher_pids)

    def test_disabled_run_collects_nothing(self):
        policy = RunPolicy(jobs=2, chunk_size=1)
        run_jobs(_square, _specs(4), policy=policy)
        assert trace.spans() == []

    def test_cache_spans_and_counters(self, tmp_path):
        from repro.runtime.cache import ResultCache

        obs.enable()
        with ResultCache(tmp_path / "cache") as cache:
            run_jobs(_square, _specs(3), cache=cache)
            run_jobs(_square, _specs(3), cache=cache)
        names = [s["name"] for s in trace.spans()]
        assert "cache.get" in names
        assert "cache.put" in names
        lookups = obs.REGISTRY.get("repro_cache_lookups_total")
        assert lookups.value(outcome="miss") == 3
        assert lookups.value(outcome="hit") == 3


class TestRunMetricsFacade:
    def test_stage_and_count_mirror_into_registry(self):
        obs.enable()
        metrics = RunMetrics()
        with metrics.stage("execute"):
            pass
        metrics.count("jobs_total", 5)
        events = obs.REGISTRY.get("repro_runtime_events_total")
        assert events.value(event="jobs_total") == 5
        stages = obs.REGISTRY.get("repro_runtime_stage_seconds")
        assert stages.snapshot(stage="execute")["count"] == 1
        # The legacy facade keeps working unchanged.
        assert metrics.counters["jobs_total"] == 5
        assert "execute" in metrics.stages

    def test_facade_is_silent_when_disabled(self):
        metrics = RunMetrics()
        with metrics.stage("execute"):
            pass
        metrics.count("jobs_total")
        assert obs.REGISTRY.get("repro_runtime_events_total") is None


class TestSolverInstrumentation:
    def test_solver_spans_and_events(self):
        from repro.spice.solver import CrossbarNetwork

        obs.enable()
        rng = np.random.default_rng(7)
        resistances = rng.uniform(1e5, 1e6, size=(8, 8))
        network = CrossbarNetwork(resistances, 2.0, 100.0)
        network.solve(np.full(8, 0.3))
        names = {s["name"] for s in trace.spans()}
        assert "solver.solve" in names
        assert "solver.assemble" in names
        events = obs.REGISTRY.get("repro_solver_events_total")
        assert events.value(event="factorize") >= 1

    def test_debug_mode_records_residuals(self):
        from repro.config import SimConfig
        from repro.spice.solver import CrossbarNetwork

        obs.enable(debug=True)
        device = SimConfig().device
        rng = np.random.default_rng(7)
        levels = rng.integers(0, device.levels, size=(8, 8))
        resistances = device.resistance_of_level(levels)
        network = CrossbarNetwork(resistances, 2.0, 100.0, device=device)
        network.solve(np.full(8, device.read_voltage))
        solve = next(
            s for s in trace.spans() if s["name"] == "solver.solve"
        )
        assert solve["attrs"]["nonlinear"] is True
        # One delta per iteration after the first.
        residuals = solve["attrs"]["residuals"]
        assert len(residuals) == solve["attrs"]["iterations"] - 1
        assert all(r >= 0 for r in residuals)


class TestWorkerTeardownCounter:
    def test_teardown_failure_is_counted_and_logged(self, caplog):
        import logging

        from repro.runtime import pool as pool_mod

        obs.enable()

        class ExplodingPool:
            class _Proc:
                pid = 1234

                def terminate(self):
                    raise OSError("gone")

            _processes = {0: _Proc()}

            def shutdown(self, wait=True):
                pass

        # The CLI may have switched the package logger to non-propagating
        # stderr handling in an earlier test; caplog captures at the root.
        logging.getLogger("repro").propagate = True
        with caplog.at_level(logging.WARNING, logger="repro.runtime.pool"):
            pool_mod._shutdown_pool(ExplodingPool(), kill=True)
        assert any(
            "terminate" in rec.getMessage() for rec in caplog.records
        )
        failures = obs.REGISTRY.get("repro_worker_teardown_failures_total")
        assert failures is not None
        assert failures.value() >= 1


class TestBatchedSolveInstrumentation:
    def test_solve_batch_records_size_and_count(self):
        from repro.spice.solver import CrossbarNetwork, solve_batch
        from repro.tech import get_memristor_model

        obs.enable()
        device = get_memristor_model("RRAM")
        rng = np.random.default_rng(61)
        networks, inputs = [], []
        for _ in range(5):
            networks.append(CrossbarNetwork(
                rng.uniform(1e5, 1e6, size=(8, 8)), 0.25, 1e3,
                device=device,
            ))
            inputs.append(rng.uniform(0.1, 1.0, size=8))
        solve_batch(networks, np.stack(inputs))

        names = [s["name"] for s in trace.spans()]
        assert "solver.solve_batch" in names
        batch_span = next(
            s for s in trace.spans() if s["name"] == "solver.solve_batch"
        )
        assert batch_span["attrs"]["batch"] == 5

        hist = obs.REGISTRY.get("repro_solver_batch_size")
        assert hist.snapshot()["count"] == 1
        assert hist.snapshot()["sum"] == 5.0
        counter = obs.REGISTRY.get("repro_solver_batched_solves_total")
        assert counter.value() == 5

    def test_disabled_tracing_records_nothing(self):
        from repro.spice.solver import CrossbarNetwork, solve_batch

        rng = np.random.default_rng(62)
        networks = [
            CrossbarNetwork(rng.uniform(1e5, 1e6, size=(6, 6)),
                            0.25, 1e3, device=None)
            for _ in range(3)
        ]
        solve_batch(networks, rng.uniform(0.1, 1.0, size=(3, 6)))
        assert obs.REGISTRY.get("repro_solver_batch_size") is None
