"""Metrics registry: counters/gauges/histograms + expositions."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_inc_and_labels(self):
        c = Counter("events_total")
        c.inc()
        c.inc(2, kind="a")
        c.inc(kind="a")
        assert c.value() == 1
        assert c.value(kind="a") == 3

    def test_negative_increment_rejected(self):
        c = Counter("events_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(5)
        g.add(-2)
        assert g.value() == 3


class TestHistogram:
    def test_snapshot_sum_and_count(self):
        h = Histogram("latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_cumulative_buckets_in_exposition(self):
        h = Histogram("latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        lines = h.exposition()
        text = "\n".join(lines)
        assert 'le="0.1"} 1' in text
        assert 'le="1"} 2' in text
        assert 'le="+Inf"} 3' in text


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total")
        b = reg.counter("hits_total")
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.names() == []

    def test_json_exposition_is_valid(self):
        reg = MetricsRegistry()
        reg.counter("hits_total").inc(3, outcome="hit")
        payload = json.loads(reg.to_json())
        assert payload["hits_total"]["type"] == "counter"


class TestPrometheusRoundTrip:
    def test_counter_gauge_histogram_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("events_total", "help text").inc(4, event="solve")
        reg.gauge("workers").set(2)
        hist = reg.histogram("stage_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05, stage="execute")
        hist.observe(0.5, stage="execute")

        text = reg.to_prometheus()
        assert "# HELP events_total help text" in text
        assert "# TYPE events_total counter" in text

        families = parse_prometheus(text)
        assert families["events_total"]["type"] == "counter"
        assert families["events_total"]["samples"][
            ("events_total", (("event", "solve"),))
        ] == 4
        assert families["workers"]["samples"][("workers", ())] == 2
        hist_samples = families["stage_seconds"]["samples"]
        assert hist_samples[
            ("stage_seconds_count", (("stage", "execute"),))
        ] == 2
        assert hist_samples[
            ("stage_seconds_bucket",
             (("le", "+Inf"), ("stage", "execute")))
        ] == 2


class TestHostileLabelValues:
    """Exposition escaping per the 0.0.4 spec (quotes, backslashes,
    newlines) and the matching escape-aware parser."""

    HOSTILE = (
        'quo"te',
        'back\\slash',
        'new\nline',
        'clo}sing brace',
        'sp ace',
        'literal\\n not newline',
        'mix"\\\n"all',
    )

    def test_hostile_values_round_trip(self):
        reg = MetricsRegistry()
        counter = reg.counter("hostile_total", "hostile labels")
        for index, value in enumerate(self.HOSTILE):
            counter.inc(index + 1, label=value)
        families = parse_prometheus(reg.to_prometheus())
        samples = families["hostile_total"]["samples"]
        recovered = {
            dict(labelset)["label"]: count
            for (_, labelset), count in samples.items()
        }
        for index, value in enumerate(self.HOSTILE):
            assert recovered[value] == index + 1, value

    def test_exposition_lines_stay_single_line(self):
        # A raw newline in a label value must be escaped to the two
        # characters '\' 'n', never emitted verbatim: one sample, one
        # exposition line.
        reg = MetricsRegistry()
        reg.counter("nl_total").inc(label="a\nb")
        sample_lines = [
            line for line in reg.to_prometheus().splitlines()
            if line.startswith("nl_total")
        ]
        assert len(sample_lines) == 1
        assert '\\n' in sample_lines[0]

    def test_escaped_quote_does_not_end_the_label_block(self):
        reg = MetricsRegistry()
        reg.counter("edge_total").inc(label='v"}x')
        families = parse_prometheus(reg.to_prometheus())
        (key,) = families["edge_total"]["samples"]
        assert dict(key[1])["label"] == 'v"}x'

    def test_help_text_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("helpful_total", "line one\nline two \\ slash").inc()
        families = parse_prometheus(reg.to_prometheus())
        assert families["helpful_total"]["help"] == (
            "line one\nline two \\ slash"
        )
