"""Wire-term calibration against the circuit-level solver (Fig. 5 flow).

These tests run the real solver on small grids, so they are the slowest
unit tests in the suite (a few seconds).
"""

import pytest

from repro.accuracy.fitting import (
    fit_wire_term,
    solver_worst_column_error,
)
from repro.accuracy.interconnect import (
    WIRE_FIT_COEFFICIENT,
    WIRE_FIT_EXPONENT,
    analog_error_rate,
)
from repro.tech import get_memristor_model


@pytest.fixture(scope="module")
def device():
    return get_memristor_model("RRAM")


@pytest.fixture(scope="module")
def small_fit(device):
    """A reduced calibration grid shared by the tests below."""
    return fit_wire_term(
        device,
        segment_resistances=(0.25, 2.25),
        sizes=(8, 16, 32, 64),
    )


def test_fit_rmse_beats_paper_bound(small_fit):
    """The paper reports a fit RMSE below 0.01; ours is far smaller."""
    assert small_fit.rmse < 0.01


def test_fitted_constants_near_defaults(small_fit):
    """The shipped (kappa, beta) defaults must match a fresh fit."""
    assert small_fit.kappa == pytest.approx(WIRE_FIT_COEFFICIENT, rel=0.3)
    assert small_fit.beta == pytest.approx(WIRE_FIT_EXPONENT, rel=0.05)


def test_fit_points_cover_the_grid(small_fit):
    assert len(small_fit.points) == 2 * 4
    assert small_fit.max_abs_residual < 0.01


def test_solver_error_sign_flips_with_size(device):
    """Small arrays: nonlinearity dominates (negative error); large
    arrays at resistive wires: IR drop dominates (positive error)."""
    small = solver_worst_column_error(device, 8, 2.25)
    large = solver_worst_column_error(device, 64, 2.25)
    assert small < 0
    assert large > 0


def test_default_model_tracks_solver(device):
    """With the shipped constants, model vs solver deviation stays
    inside the paper's 0.01 RMSE budget pointwise."""
    for size, r in ((16, 0.25), (32, 0.77), (64, 0.25)):
        solver_eps = solver_worst_column_error(device, size, r)
        model_eps = analog_error_rate(size, size, r, device)
        assert model_eps == pytest.approx(solver_eps, abs=0.01)


def test_fit_constants_generalise_across_devices():
    """The shipped (kappa, beta) defaults were calibrated on the
    reference RRAM; devices with different windows (PCM, 4-bit RRAM)
    must fit to nearly the same constants — the wire term is geometry
    physics, not device physics."""
    reference = fit_wire_term(
        get_memristor_model("RRAM"), (0.25, 2.25), sizes=(8, 16, 32)
    )
    for name in ("PCM", "RRAM-4BIT"):
        fit = fit_wire_term(
            get_memristor_model(name), (0.25, 2.25), sizes=(8, 16, 32)
        )
        assert fit.kappa == pytest.approx(reference.kappa, rel=0.25)
        assert fit.beta == pytest.approx(reference.beta, rel=0.05)
        assert fit.rmse < 0.01
