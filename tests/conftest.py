"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimConfig
from repro.nn.networks import jpeg_autoencoder, large_bank_layer, validation_mlp


@pytest.fixture
def default_config() -> SimConfig:
    """The Table-I default configuration (90 nm, 128 crossbar, RRAM)."""
    return SimConfig()


@pytest.fixture
def paper_45nm_config() -> SimConfig:
    """The large-bank case-study base: 45 nm CMOS, 4-bit weights."""
    return SimConfig(
        cmos_tech=45,
        interconnect_tech=45,
        weight_bits=4,
        signal_bits=8,
        crossbar_size=128,
    )


@pytest.fixture
def mlp_network():
    """The Table II validation workload (two 128x128 weight layers)."""
    return validation_mlp()


@pytest.fixture
def autoencoder_network():
    """The 64-16-64 accuracy-validation workload."""
    return jpeg_autoencoder()


@pytest.fixture
def large_layer_network():
    """The 2048x1024 large-bank case-study workload."""
    return large_bank_layer()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator: every randomised test is reproducible."""
    return np.random.default_rng(20160314)  # DATE'16 vintage
