"""Tests for the repro.analysis static-analysis pass (DESIGN.md S20).

Each rule gets a paired fixture: a known-violation snippet that must
be flagged and a clean counterpart that must not.  On top of that:
inline-suppression handling, the baseline add/suppress round-trip,
the ``repro lint`` CLI contract (exit codes, JSON format), and the
gate the ISSUE demands — ``src/repro`` is clean modulo the checked-in
baseline, which itself stays small and justified.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    all_rules,
    analyze_paths,
    analyze_source,
    fingerprint_findings,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
BASELINE_FILE = REPO_ROOT / "lint-baseline.json"


def findings_for(source, module, rule=None):
    found = analyze_source(textwrap.dedent(source), module=module)
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def rule_ids(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# R1 determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    VIOLATION = """
        import time
        import numpy as np

        def job_key_parts():
            stamp = time.time()
            noise = np.random.rand(4)
            return stamp, noise
    """
    CLEAN = """
        import time
        import numpy as np

        def job_key_parts(rng: np.random.Generator):
            t0 = time.perf_counter()
            budget = time.monotonic()
            noise = rng.normal(size=4)
            seeded = np.random.default_rng(np.random.SeedSequence(7))
            return t0, budget, noise, seeded
    """

    def test_violation_flagged(self):
        found = findings_for(self.VIOLATION, "repro.runtime.fixture", "R1")
        assert len(found) == 2
        assert "time.time()" in found[0].message
        assert "np.random.rand" in found[1].message

    def test_clean_counterpart(self):
        assert not findings_for(self.CLEAN, "repro.runtime.fixture", "R1")

    def test_out_of_scope_module_not_flagged(self):
        # Presentation-layer wall clock (obs trace timestamps) is legal.
        assert not findings_for(self.VIOLATION, "repro.obs.fixture", "R1")

    def test_stdlib_random_flagged(self):
        source = """
            import random

            def trial():
                return random.randint(0, 10)
        """
        found = findings_for(source, "repro.faults.fixture", "R1")
        assert len(found) == 1
        assert "SeedSequence" in found[0].message

    def test_datetime_now_flagged(self):
        source = """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """
        found = findings_for(source, "repro.accuracy.fixture", "R1")
        assert len(found) == 1


# ----------------------------------------------------------------------
# R2 cache-key purity
# ----------------------------------------------------------------------
class TestCachePurityRule:
    VIOLATION = """
        from repro.runtime.jobs import content_key

        def make_key(config):
            return content_key("kind", lambda: config.size)
    """
    CLEAN = """
        from repro.runtime.jobs import content_key

        def make_key(config, fingerprint):
            return content_key("kind", config.to_dict(), fingerprint)
    """

    def test_violation_flagged(self):
        found = findings_for(self.VIOLATION, "repro.dse.fixture", "R2")
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_clean_counterpart(self):
        assert not findings_for(self.CLEAN, "repro.dse.fixture", "R2")

    def test_generator_and_function_ref_flagged(self):
        source = """
            from repro.runtime.jobs import canonical_json

            def helper():
                return 3

            def bad(values):
                a = canonical_json(v * 2 for v in values)
                b = canonical_json(helper)
                c = canonical_json(open("weights.json"))
                return a, b, c
        """
        found = findings_for(source, "repro.faults.fixture", "R2")
        messages = " | ".join(f.message for f in found)
        assert len(found) == 3
        assert "generator expression" in messages
        assert "'helper'" in messages
        assert "open()" in messages

    def test_materialized_comprehension_clean(self):
        source = """
            from repro.runtime.jobs import canonical_json

            def good(values):
                return canonical_json([v * 2 for v in values])
        """
        assert not findings_for(source, "repro.faults.fixture", "R2")


# ----------------------------------------------------------------------
# R3 fork-safety
# ----------------------------------------------------------------------
class TestForkSafetyRule:
    VIOLATION = """
        _BUFFER = []

        def record(item):
            _BUFFER.append(item)
    """
    CLEAN = """
        _BUFFER = []

        def record(item):
            _BUFFER.append(item)

        def activate(context):
            _BUFFER.clear()
    """

    def test_violation_flagged(self):
        found = findings_for(self.VIOLATION, "repro.obs.fixture", "R3")
        assert len(found) == 1
        assert "_BUFFER" in found[0].message

    def test_clean_counterpart(self):
        assert not findings_for(self.CLEAN, "repro.obs.fixture", "R3")

    def test_global_rebinding_needs_hook(self):
        source = """
            _POOL = None

            def acquire():
                global _POOL
                _POOL = object()
        """
        found = findings_for(source, "repro.runtime.fixture", "R3")
        assert len(found) == 1
        source_with_hook = source + """
            def shutdown_pool():
                global _POOL
                _POOL = None
        """
        assert not findings_for(
            source_with_hook, "repro.runtime.fixture", "R3"
        )

    def test_import_time_registry_not_flagged(self):
        # Populated only at import (decorators); read-only afterwards.
        source = """
            REGISTRY = {}

            def register(cls):
                pass

            REGISTRY["adc"] = object()

            def lookup(name):
                return REGISTRY[name]
        """
        assert not findings_for(source, "repro.spice.fixture", "R3")

    def test_out_of_scope_package_not_flagged(self):
        # repro.arch never runs inside pool workers.
        assert not findings_for(self.VIOLATION, "repro.arch.fixture", "R3")


# ----------------------------------------------------------------------
# R4 except hygiene
# ----------------------------------------------------------------------
class TestExceptHygieneRule:
    VIOLATION = """
        def swallow(work):
            try:
                work()
            except Exception:
                pass
    """
    CLEAN = """
        import logging

        _log = logging.getLogger(__name__)

        def accounted(work, metrics):
            try:
                work()
            except Exception as exc:
                _log.warning("work failed: %s", exc)
            try:
                work()
            except Exception:
                metrics.count("failures")
            try:
                work()
            except Exception:
                raise
    """

    def test_violation_flagged(self):
        found = findings_for(self.VIOLATION, "repro.arch.fixture", "R4")
        assert len(found) == 1
        assert "broad except" in found[0].message

    def test_bare_except_flagged(self):
        source = """
            def swallow(work):
                try:
                    work()
                except:
                    return None
        """
        found = findings_for(source, "repro.arch.fixture", "R4")
        assert len(found) == 1
        assert "bare except" in found[0].message

    def test_clean_counterpart(self):
        assert not findings_for(self.CLEAN, "repro.arch.fixture", "R4")

    def test_narrow_except_never_flagged(self):
        source = """
            def narrow(work):
                try:
                    work()
                except ValueError:
                    return None
        """
        assert not findings_for(source, "repro.arch.fixture", "R4")

    def test_scope_covers_obs_progress(self):
        """The ETA estimator is product code: R4 applies to it like any
        other repro module."""
        found = findings_for(self.VIOLATION, "repro.obs.progress", "R4")
        assert len(found) == 1


# ----------------------------------------------------------------------
# Job-label discipline (DESIGN.md S23)
# ----------------------------------------------------------------------
class TestJobLabelDiscipline:
    #: Files allowed to mention an explicit ``job=`` label on a metric
    #: record call — the injection machinery itself, nothing else.
    ALLOWLIST = {Path("obs") / "metrics.py"}

    def test_job_labels_only_via_jobcontext(self):
        """No product code passes ``job=`` to inc/set/add/observe:
        per-job labels flow exclusively through the registry's
        JobContext injection, keeping attribution and the rollup
        lifecycle in one place."""
        import re

        pattern = re.compile(
            r"\.(inc|set|add|observe)\([^)]*\bjob\s*=", re.S
        )
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.relative_to(SRC) in self.ALLOWLIST:
                continue
            text = path.read_text(encoding="utf-8")
            for match in pattern.finditer(text):
                line = text[:match.start()].count("\n") + 1
                offenders.append(f"{path.relative_to(REPO_ROOT)}:{line}")
        assert not offenders, (
            "explicit job= metric labels outside the injection "
            f"machinery: {offenders}"
        )


# ----------------------------------------------------------------------
# R5 units discipline
# ----------------------------------------------------------------------
class TestUnitsRule:
    VIOLATION = """
        def delay_seconds(fo4_ps):
            return fo4_ps * 1e-12
    """
    CLEAN = """
        from repro.units import PS

        def delay_seconds(fo4_ps):
            return fo4_ps * PS
    """

    def test_violation_flagged(self):
        found = findings_for(self.VIOLATION, "repro.tech.fixture", "R5")
        assert len(found) == 1
        assert "repro.units" in found[0].message

    def test_clean_counterpart(self):
        assert not findings_for(self.CLEAN, "repro.tech.fixture", "R5")

    def test_non_prefix_literal_not_flagged(self):
        # Model coefficients with a mantissa are not scale factors.
        source = """
            def energy():
                return 3.1e-3 / 1.2e9
        """
        assert not findings_for(source, "repro.circuits.fixture", "R5")

    def test_out_of_scope_module_not_flagged(self):
        assert not findings_for(self.VIOLATION, "repro.arch.fixture", "R5")


# ----------------------------------------------------------------------
# Inline suppression
# ----------------------------------------------------------------------
class TestSuppression:
    def test_same_line_allow(self):
        source = """
            import time

            def stamp():
                return time.time()  # lint: allow=R1 metadata only
        """
        assert not findings_for(source, "repro.runtime.fixture", "R1")

    def test_previous_line_allow(self):
        source = """
            import time

            def stamp():
                # lint: allow=R1 row-creation timestamp, not a key part
                return time.time()
        """
        assert not findings_for(source, "repro.runtime.fixture", "R1")

    def test_allow_other_rule_does_not_silence(self):
        source = """
            import time

            def stamp():
                return time.time()  # lint: allow=R4
        """
        assert findings_for(source, "repro.runtime.fixture", "R1")

    def test_star_allows_everything(self):
        source = """
            import time

            def stamp():
                return time.time()  # lint: allow=*
        """
        assert not findings_for(source, "repro.runtime.fixture")


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------
class TestBaseline:
    def _violating_file(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "runtime"
        src_dir.mkdir(parents=True)
        (src_dir / "__init__.py").write_text("")
        (src_dir / "wall.py").write_text(textwrap.dedent("""
            import time

            def stamp():
                return time.time()
        """))
        return tmp_path / "src"

    def test_add_suppress_roundtrip(self, tmp_path):
        src = self._violating_file(tmp_path)
        findings = analyze_paths([src], root=tmp_path)
        assert rule_ids(findings) == ["R1"]

        baseline_path = tmp_path / "lint-baseline.json"
        baseline = Baseline.load(baseline_path)
        baseline.update_from(findings, justification="known, tracked")
        baseline.save(baseline_path)

        # Same findings re-analyzed: everything is grandfathered.
        reloaded = Baseline.load(baseline_path)
        new, matched = reloaded.split(analyze_paths([src], root=tmp_path))
        assert new == []
        assert len(matched) == 1
        entry = next(iter(reloaded.entries.values()))
        assert entry["justification"] == "known, tracked"

    def test_new_violation_not_masked(self, tmp_path):
        src = self._violating_file(tmp_path)
        findings = analyze_paths([src], root=tmp_path)
        baseline = Baseline()
        baseline.update_from(findings)

        # A second, different violation appears: it must surface.
        extra = src / "repro" / "runtime" / "wall2.py"
        extra.write_text(textwrap.dedent("""
            import random

            def draw():
                return random.random()
        """))
        new, matched = baseline.split(analyze_paths([src], root=tmp_path))
        assert len(matched) == 1
        assert len(new) == 1
        assert "random.random" in new[0].message

    def test_fingerprints_survive_line_moves(self, tmp_path):
        src = self._violating_file(tmp_path)
        first = fingerprint_findings(analyze_paths([src], root=tmp_path))
        wall = src / "repro" / "runtime" / "wall.py"
        wall.write_text("# a new leading comment\n\n" + wall.read_text())
        second = fingerprint_findings(analyze_paths([src], root=tmp_path))
        assert [fp for _, fp in first] == [fp for _, fp in second]
        assert second[0][0].line != first[0][0].line

    def test_stale_entries_reported(self, tmp_path):
        src = self._violating_file(tmp_path)
        findings = analyze_paths([src], root=tmp_path)
        baseline = Baseline()
        baseline.update_from(findings)
        # Fix the violation: its baseline entry is now stale.
        (src / "repro" / "runtime" / "wall.py").write_text(
            "def stamp():\n    return 0.0\n"
        )
        stale = baseline.stale_fingerprints(
            analyze_paths([src], root=tmp_path)
        )
        assert len(stale) == 1


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
class TestLintCli:
    def _run(self, *argv, cwd):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            cwd=cwd, capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        result = self._run(str(clean), cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout

    def test_findings_exit_two_and_json_parses(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "runtime" / "wall.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        result = self._run(
            "src", "--format", "json", cwd=tmp_path,
        )
        assert result.returncode == 2, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["rule"] == "R1"
        assert payload["findings"][0]["fingerprint"]

    def test_update_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "runtime" / "wall.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        update = self._run("src", "--update-baseline", cwd=tmp_path)
        assert update.returncode == 0, update.stderr
        gated = self._run("src", cwd=tmp_path)
        assert gated.returncode == 0, gated.stdout
        assert "grandfathered" in gated.stdout
        # --no-baseline re-surfaces everything.
        full = self._run("src", "--no-baseline", cwd=tmp_path)
        assert full.returncode == 2

    def test_rules_listing(self, tmp_path):
        result = self._run("--rules", cwd=tmp_path)
        assert result.returncode == 0
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6",
                        "R7", "R8", "R9"):
            assert rule_id in result.stdout

    def test_graph_flag_controls_project_pass(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "service" / "store.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(textwrap.dedent("""
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value

                def peek(self, key):
                    return self._data.get(key)
        """))
        with_graph = self._run("src", "--format", "json", cwd=tmp_path)
        assert with_graph.returncode == 2
        payload = json.loads(with_graph.stdout)
        assert payload["findings"][0]["rule"] == "R7"
        assert payload["summary"]["graph_build_seconds"] >= 0.0
        assert payload["summary"]["graph_modules"] >= 1

        without = self._run(
            "src", "--no-graph", "--format", "json", cwd=tmp_path,
        )
        assert without.returncode == 0, without.stdout
        summary = json.loads(without.stdout)["summary"]
        assert "graph_build_seconds" not in summary


# ----------------------------------------------------------------------
# The gate: src/repro is clean modulo the checked-in baseline
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_repro_clean_modulo_baseline(self):
        findings = analyze_paths([SRC], root=REPO_ROOT)
        baseline = Baseline.load(BASELINE_FILE)
        new, _ = baseline.split(findings)
        assert new == [], "new lint findings:\n" + "\n".join(
            f.format() for f in new
        )

    def test_baseline_is_small_and_justified(self):
        baseline = Baseline.load(BASELINE_FILE)
        assert len(baseline.entries) <= 5
        for entry in baseline.entries.values():
            justification = entry.get("justification", "")
            assert justification, f"unjustified baseline entry: {entry}"
            assert justification != "grandfathered by --update-baseline", (
                "baseline entries need a hand-written justification: "
                f"{entry}"
            )

    def test_no_stale_baseline_entries(self):
        baseline = Baseline.load(BASELINE_FILE)
        stale = baseline.stale_fingerprints(
            analyze_paths([SRC], root=REPO_ROOT)
        )
        assert stale == [], f"fixed entries still in baseline: {stale}"

    def test_seeded_violation_is_caught(self, tmp_path):
        """Negative control: a planted violation must break the gate.

        Mirrors the CI job's seeded-fixture step — guards against the
        analyzer silently matching nothing (e.g. a scope typo turning
        every rule off).
        """
        planted = tmp_path / "src" / "repro" / "runtime" / "planted.py"
        planted.parent.mkdir(parents=True)
        planted.write_text(
            "import time\n\ndef key_part():\n    return time.time()\n"
        )
        baseline = Baseline.load(BASELINE_FILE)
        new, _ = baseline.split(
            analyze_paths([tmp_path / "src"], root=tmp_path)
        )
        assert len(new) == 1
        assert new[0].rule == "R1"

    def test_registered_rule_set(self):
        assert sorted(r.rule_id for r in all_rules()) == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))


# ----------------------------------------------------------------------
# R6 hot-loop-solve
# ----------------------------------------------------------------------
class TestHotLoopSolveRule:
    VIOLATION = """
        def sweep(networks, inputs):
            results = []
            for index, network in enumerate(networks):
                results.append(network.solve(inputs[index]))
            return results
    """
    CLEAN = """
        from repro.spice.solver import solve_batch

        def sweep(networks, inputs):
            batch = solve_batch(networks, inputs)
            return [batch[k] for k in range(len(batch))]
    """

    def test_violation_flagged(self):
        found = findings_for(self.VIOLATION, "repro.accuracy.montecarlo",
                             rule="R6")
        assert len(found) == 1
        assert "solve_batch" in found[0].message

    def test_clean_counterpart(self):
        assert not findings_for(self.CLEAN, "repro.accuracy.montecarlo",
                                rule="R6")

    def test_solve_many_in_while_flagged(self):
        source = """
            def drain(queue, inputs):
                while queue:
                    queue.pop().solve_many(inputs)
        """
        found = findings_for(source, "repro.faults.campaign", rule="R6")
        assert len(found) == 1
        assert "while" in found[0].message

    def test_comprehension_flagged(self):
        source = """
            def sweep(networks, inputs):
                return [n.solve(v) for n, v in zip(networks, inputs)]
        """
        found = findings_for(source, "repro.dse.explorer", rule="R6")
        assert len(found) == 1
        assert "comprehension" in found[0].message

    def test_out_of_scope_module_not_flagged(self):
        # The solver itself loops solves legitimately (its own
        # fixed-point rounds); R6 polices only the evaluation layers.
        assert not findings_for(self.VIOLATION, "repro.spice.solver",
                                rule="R6")

    def test_nested_function_not_charged_to_loop(self):
        source = """
            def build_workers(networks):
                workers = []
                for network in networks:
                    def worker(inputs):
                        return network.solve(inputs)
                    workers.append(worker)
                return workers
        """
        assert not findings_for(source, "repro.accuracy.montecarlo",
                                rule="R6")

    def test_loop_free_solve_not_flagged(self):
        source = """
            def one_point(network, inputs):
                return network.solve(inputs)
        """
        assert not findings_for(source, "repro.accuracy.montecarlo",
                                rule="R6")

    def test_suppression_comment_honoured(self):
        source = """
            def sweep(networks, inputs):
                out = []
                for index, network in enumerate(networks):
                    # lint: allow=R6 convergence study needs point-wise
                    out.append(network.solve(inputs[index]))
                return out
        """
        assert not findings_for(source, "repro.faults.campaign",
                                rule="R6")


# ----------------------------------------------------------------------
# R7 lock-discipline (graph rule)
# ----------------------------------------------------------------------
class TestLockDisciplineRule:
    # The PR 6 long-poll bug, rediscovered by hand in PR 9: a bare
    # Condition.wait on a condition shared by every job, so any other
    # job's event wakes it into an early empty return.
    EVENTS_SINCE_BUG = """
        import threading

        class JobManager:
            def __init__(self):
                self._lock = threading.Lock()
                self._wake = threading.Condition(self._lock)
                self._events = {}

            def events_since(self, job_id, cursor, timeout):
                with self._wake:
                    events = self._events.get(job_id, [])[cursor:]
                    if not events:
                        self._wake.wait(timeout)
                        events = self._events.get(job_id, [])[cursor:]
                    return events
    """

    EVENTS_SINCE_FIXED = """
        import threading

        class JobManager:
            def __init__(self):
                self._lock = threading.Lock()
                self._wake = threading.Condition(self._lock)
                self._events = {}

            def events_since(self, job_id, cursor, timeout):
                with self._wake:
                    self._wake.wait_for(
                        lambda: len(self._events.get(job_id, [])) > cursor,
                        timeout,
                    )
                    return self._events.get(job_id, [])[cursor:]
    """

    def test_pr9_events_since_bug_flagged(self):
        found = findings_for(self.EVENTS_SINCE_BUG,
                             "repro.service.fixture", rule="R7")
        assert len(found) == 1
        assert "bare Condition.wait" in found[0].message
        assert "wait_for" in found[0].message

    def test_wait_for_fix_is_clean(self):
        assert not findings_for(self.EVENTS_SINCE_FIXED,
                                "repro.service.fixture", rule="R7")

    def test_while_predicate_loop_is_clean(self):
        source = """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._items = []

                def pop(self):
                    with self._cond:
                        while not self._items:
                            self._cond.wait()
                        return self._items.pop()
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")

    def test_unguarded_read_of_guarded_attr_flagged(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value

                def peek(self, key):
                    return self._data.get(key)
        """
        found = findings_for(source, "repro.service.fixture", rule="R7")
        assert len(found) == 1
        assert "_data" in found[0].message
        assert "peek" in found[0].message

    def test_lock_held_helper_fixpoint_clean(self):
        # _append is only ever called from inside the locked region,
        # and nothing outside the class calls it: the "# Caller holds
        # the lock" convention, proven instead of trusted.
        source = """
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []

                def record(self, event):
                    with self._lock:
                        self._events.append("pre")
                        self._append(event)

                def _append(self, event):
                    self._events.append(event)
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")

    def test_helper_with_unlocked_call_site_flagged(self):
        source = """
            import threading

            class Log:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []

                def record(self, event):
                    with self._lock:
                        self._events.append("pre")
                        self._append(event)

                def record_unlocked(self, event):
                    self._append(event)

                def _append(self, event):
                    self._events.append(event)
        """
        found = findings_for(source, "repro.service.fixture", rule="R7")
        assert found, "helper with an unlocked call site must be flagged"
        assert any("_events" in f.message for f in found)

    def test_notify_outside_lock_flagged(self):
        source = """
            import threading

            class Waker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._ready = False

                def arm(self):
                    with self._cond:
                        self._ready = True
                    self._cond.notify_all()
        """
        found = findings_for(source, "repro.service.fixture", rule="R7")
        assert len(found) == 1
        assert "notify" in found[0].message

    def test_notify_inside_lock_clean(self):
        source = """
            import threading

            class Waker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._ready = False

                def arm(self):
                    with self._cond:
                        self._ready = True
                        self._cond.notify_all()
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")

    def test_inherited_lock_guards_subclass(self):
        # The lock lives in the base class; the subclass writes under
        # it in one method and reads bare in another — inheritance
        # must not launder the discipline (the metrics.py bug family).
        source = """
            import threading

            class Base:
                def __init__(self):
                    self._lock = threading.Lock()

            class Child(Base):
                def __init__(self):
                    super().__init__()
                    self._values = {}

                def inc(self, key):
                    with self._lock:
                        self._values[key] = 1

                def value(self, key):
                    return self._values.get(key)
        """
        found = findings_for(source, "repro.obs.fixture", rule="R7")
        assert len(found) == 1
        assert "_values" in found[0].message

    def test_init_writes_exempt(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
                    self._data["boot"] = True

                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")


# ----------------------------------------------------------------------
# R8 thread/executor lifecycle (graph rule)
# ----------------------------------------------------------------------
class TestThreadLifecycleRule:
    def test_executor_without_shutdown_flagged(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                executor = ProcessPoolExecutor(max_workers=2)
                return [executor.submit(t) for t in tasks]
        """
        found = findings_for(source, "repro.runtime.fixture", rule="R8")
        assert len(found) == 1
        assert "ProcessPoolExecutor" in found[0].message

    def test_with_block_clean(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                with ProcessPoolExecutor(max_workers=2) as executor:
                    return [f.result() for f in map(executor.submit, tasks)]
        """
        assert not findings_for(source, "repro.runtime.fixture",
                                rule="R8")

    def test_class_scoped_shutdown_clean(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            class Pool:
                def start(self):
                    self._executor = ProcessPoolExecutor(max_workers=2)

                def stop(self):
                    self._executor.shutdown(wait=True)
        """
        assert not findings_for(source, "repro.runtime.fixture",
                                rule="R8")

    def test_factory_with_module_teardown_clean(self):
        # The warm-pool pattern: a factory returns the executor and a
        # sibling helper owns the teardown.
        source = """
            from concurrent.futures import ProcessPoolExecutor

            def acquire(workers):
                return ProcessPoolExecutor(max_workers=workers)

            def release(executor):
                executor.shutdown(wait=False)
        """
        assert not findings_for(source, "repro.runtime.fixture",
                                rule="R8")

    def test_bare_factory_without_teardown_flagged(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            def acquire(workers):
                return ProcessPoolExecutor(max_workers=workers)
        """
        found = findings_for(source, "repro.runtime.fixture", rule="R8")
        assert len(found) == 1

    def test_project_server_subclass_resolved(self):
        # Constructing a *subclass* of ThreadingHTTPServer is only
        # visible through the index's class hierarchy.
        source = """
            from http.server import ThreadingHTTPServer

            class ApiServer(ThreadingHTTPServer):
                daemon_threads = True

            def serve(address):
                server = ApiServer(address, None)
                server.serve_forever()
        """
        found = findings_for(source, "repro.service.fixture", rule="R8")
        assert len(found) == 1
        assert "ThreadingHTTPServer" in found[0].message

    def test_non_daemon_thread_without_join_flagged(self):
        source = """
            import threading

            def start(worker):
                thread = threading.Thread(target=worker)
                thread.start()
        """
        found = findings_for(source, "repro.service.fixture", rule="R8")
        assert len(found) == 1
        assert "join" in found[0].message

    def test_daemon_thread_clean(self):
        source = """
            import threading

            def start(worker):
                thread = threading.Thread(target=worker, daemon=True)
                thread.start()
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R8")

    def test_thread_with_class_join_clean(self):
        source = """
            import threading

            class Runner:
                def start(self, worker):
                    self._thread = threading.Thread(target=worker)
                    self._thread.start()

                def shutdown(self):
                    self._thread.join(timeout=5)
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R8")


# ----------------------------------------------------------------------
# R9 cross-module determinism taint (graph rule)
# ----------------------------------------------------------------------
class TestDeterminismTaintRule:
    def _tree(self, tmp_path, files):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        for name, source in files.items():
            (pkg / name).write_text(textwrap.dedent(source))
        return pkg

    def test_cross_module_adjacency_flagged(self, tmp_path):
        pkg = self._tree(tmp_path, {
            "clockmod.py": """
                import time

                def stamp():
                    return time.time()
            """,
            "keys.py": """
                from pkg.clockmod import stamp

                def canonical(value):
                    return repr(value)

                def make_key(payload):
                    meta = stamp()
                    return canonical({"payload": payload, "meta": meta})
            """,
        })
        found = [f for f in analyze_paths([pkg], root=tmp_path)
                 if f.rule == "R9"]
        assert len(found) == 1
        assert found[0].module == "pkg.clockmod"
        assert "time.time()" in found[0].message
        assert "canonical" in found[0].message

    def test_direct_mix_is_zero_hops(self, tmp_path):
        pkg = self._tree(tmp_path, {
            "mix.py": """
                import time

                def canonical(value):
                    return repr(value)

                def make_key(payload):
                    return canonical((payload, time.time()))
            """,
        })
        found = [f for f in analyze_paths([pkg], root=tmp_path)
                 if f.rule == "R9"]
        assert len(found) == 1
        assert "0 hop(s)" in found[0].message

    def test_beyond_hop_bound_invisible(self, tmp_path):
        # stamp <- w1 <- w2 <- w3 <- mixer: 4 hops up, out of range.
        pkg = self._tree(tmp_path, {
            "deep.py": """
                import time

                def canonical(value):
                    return repr(value)

                def stamp():
                    return time.time()

                def w1():
                    return stamp()

                def w2():
                    return w1()

                def w3():
                    return w2()

                def make_key(payload):
                    return canonical((payload, w3()))
            """,
        })
        found = [f for f in analyze_paths([pkg], root=tmp_path)
                 if f.rule == "R9"]
        assert found == []

    def test_no_graph_disables_rule(self, tmp_path):
        pkg = self._tree(tmp_path, {
            "mix.py": """
                import time

                def canonical(value):
                    return repr(value)

                def make_key(payload):
                    return canonical((payload, time.time()))
            """,
        })
        found = [f for f in analyze_paths([pkg], root=tmp_path,
                                          graph=False)
                 if f.rule == "R9"]
        assert found == []


# ----------------------------------------------------------------------
# Suppression of graph rules (multi-rule allow lists, allow=*)
# ----------------------------------------------------------------------
class TestGraphRuleSuppression:
    STORE = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def peek(self, key):
                return self._data.get(key)%s
    """

    def test_multi_rule_allow_silences_graph_rule(self):
        source = self.STORE % "  # lint: allow=R1,R7 snapshot read"
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")

    def test_multi_rule_allow_is_not_a_wildcard(self):
        source = self.STORE % "  # lint: allow=R1,R8 wrong rules"
        assert findings_for(source, "repro.service.fixture", rule="R7")

    def test_star_allows_graph_rule(self):
        source = self.STORE % "  # lint: allow=*"
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")

    def test_line_above_allow_on_graph_rule(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value

                def peek(self, key):
                    # lint: allow=R7 lock-free snapshot by design
                    return self._data.get(key)
        """
        assert not findings_for(source, "repro.service.fixture",
                                rule="R7")

    def test_multi_rule_allow_covers_both_rules_on_one_line(self):
        # One line tripping R1; the same allow list names R1 and R7.
        source = """
            import time

            def stamp():
                return time.time()  # lint: allow=R1,R7 metadata only
        """
        assert not findings_for(source, "repro.runtime.fixture",
                                rule="R1")


# ----------------------------------------------------------------------
# Baseline rename round-trip (justifications survive module renames)
# ----------------------------------------------------------------------
class TestBaselineRename:
    def test_rename_keeps_justification(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "runtime"
        src_dir.mkdir(parents=True)
        (src_dir / "__init__.py").write_text("")
        wall = src_dir / "wall.py"
        wall.write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        src = tmp_path / "src"
        baseline = Baseline()
        baseline.update_from(analyze_paths([src], root=tmp_path))
        fingerprint = next(iter(baseline.entries))
        baseline.entries[fingerprint]["justification"] = (
            "metadata only, argued in review"
        )

        # Rename the module: the fingerprint changes (module is part
        # of the hash) but the violation is the same one.
        wall.rename(src_dir / "clock.py")
        baseline.update_from(analyze_paths([src], root=tmp_path))

        assert len(baseline.entries) == 1
        entry = next(iter(baseline.entries.values()))
        assert entry["fingerprint"] != fingerprint
        assert entry["module"] == "repro.runtime.clock"
        assert entry["justification"] == "metadata only, argued in review"

    def test_distinct_violations_do_not_cross_match(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "runtime"
        src_dir.mkdir(parents=True)
        (src_dir / "__init__.py").write_text("")
        (src_dir / "wall.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        src = tmp_path / "src"
        baseline = Baseline()
        baseline.update_from(analyze_paths([src], root=tmp_path))
        for entry in baseline.entries.values():
            entry["justification"] = "wall-clock argued safe"

        # The old violation is *fixed* and an unrelated one appears:
        # the justification must not leak onto the new finding.
        (src_dir / "wall.py").write_text(
            "import random\n\ndef draw():\n    return random.random()\n"
        )
        baseline.update_from(analyze_paths([src], root=tmp_path))
        entry = next(iter(baseline.entries.values()))
        assert "random.random" in entry["message"]
        assert entry["justification"] == (
            "grandfathered by --update-baseline"
        )
