"""Instruction set and controller."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.isa import Controller, Instruction, Opcode, assemble
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import validation_mlp


@pytest.fixture
def accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return Accelerator(config, validation_mlp())


@pytest.fixture
def controller(accelerator):
    return Controller(accelerator)


class TestAssembler:
    def test_basic_program(self):
        program = assemble("WRITE\nREAD 0\nCOMPUTE 10\n")
        assert [i.opcode for i in program] == [
            Opcode.WRITE, Opcode.READ, Opcode.COMPUTE,
        ]
        assert program[2].operand == 10

    def test_case_insensitive_and_comments(self):
        program = assemble("# load\nwrite all\ncompute  # one sample\n")
        assert len(program) == 2
        assert program[0].operand is None

    def test_unknown_mnemonic(self):
        with pytest.raises(ConfigError, match="unknown instruction"):
            assemble("JUMP 3")

    def test_bad_operand(self):
        with pytest.raises(ConfigError, match="bad operand"):
            assemble("READ x")

    def test_too_many_operands(self):
        with pytest.raises(ConfigError, match="too many"):
            assemble("COMPUTE 1 2")

    def test_str_round_trip(self):
        inst = Instruction(Opcode.COMPUTE, 5)
        assert assemble(str(inst)) == [inst]


class TestController:
    def test_write_then_compute(self, controller, accelerator):
        trace = controller.run(assemble("WRITE\nCOMPUTE 3"))
        assert trace.instructions == 2
        assert trace.banks_written == len(accelerator.banks)
        assert trace.samples_computed == 3
        expected = (
            accelerator.write_performance().latency
            + 3 * accelerator.sample_performance().latency
        )
        assert trace.total_latency == pytest.approx(expected)

    def test_write_single_bank(self, controller):
        trace = controller.run([Instruction(Opcode.WRITE, 0)])
        assert trace.banks_written == 1

    def test_read_counts_cells(self, controller):
        trace = controller.run(assemble("READ 0\nREAD 1"))
        assert trace.cells_read == 2

    def test_write_amortised_over_many_computes(self, controller, accelerator):
        """The fixed-weights argument (Sec. II.B.1): programming once and
        computing many samples keeps the write share small."""
        trace = controller.run(assemble("WRITE\nCOMPUTE 10000"))
        write_energy = accelerator.write_performance().dynamic_energy
        assert write_energy / trace.total_energy < 0.5

    def test_bank_index_checked(self, controller):
        with pytest.raises(ConfigError, match="out of range"):
            controller.run([Instruction(Opcode.WRITE, 99)])

    def test_compute_needs_positive_count(self, controller):
        with pytest.raises(ConfigError):
            controller.run([Instruction(Opcode.COMPUTE, 0)])

    def test_history_records_instructions(self, controller):
        trace = controller.run(assemble("WRITE 0\nCOMPUTE"))
        assert trace.history == ["WRITE 0", "COMPUTE"]
