"""ASCII plotting helpers."""

import pytest

from repro.report_plot import PlotError, bar_chart, line_plot, scatter_plot


class TestLinePlot:
    def test_markers_and_legend(self):
        text = line_plot(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]},
            width=20, height=8,
        )
        assert "o" in text and "x" in text
        assert "legend: o=a  x=b" in text

    def test_axis_labels_present(self):
        text = line_plot(
            {"s": [(0, 0), (10, 5)]}, width=20, height=8,
            x_label="size", y_label="eps",
        )
        assert "eps vs size" in text
        assert "0" in text and "10" in text

    def test_log_x_axis(self):
        text = line_plot(
            {"s": [(8, 1), (1024, 2)]}, width=20, height=8, logx=True
        )
        assert "[log x]" in text
        assert "1024" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(PlotError):
            line_plot({"s": [(0, 1)]}, logx=True)

    def test_extremes_land_on_borders(self):
        text = line_plot({"s": [(0, 0), (1, 1)]}, width=20, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o|")  # max y, max x: top right
        assert rows[-1].lstrip().startswith("0 |o")  # min at bottom left

    def test_empty_inputs_rejected(self):
        with pytest.raises(PlotError):
            line_plot({})
        with pytest.raises(PlotError):
            line_plot({"s": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(PlotError):
            line_plot({"s": [(0, 0)]}, width=5, height=2)

    def test_constant_series_does_not_crash(self):
        text = line_plot({"s": [(1, 3), (2, 3), (3, 3)]}, width=20,
                         height=8)
        assert "o" in text


class TestScatter:
    def test_wrapper_uses_one_series(self):
        text = scatter_plot([(1, 2), (3, 4)], name="pts", width=20,
                            height=8)
        assert "legend: o=pts" in text


class TestBarChart:
    def test_sorted_and_scaled(self):
        text = bar_chart({"small": 1.0, "big": 4.0}, width=8)
        lines = text.splitlines()
        assert lines[0].strip().startswith("big")
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 2

    def test_zero_value_gets_no_bar(self):
        text = bar_chart({"zero": 0.0, "one": 1.0}, width=10)
        zero_line = [l for l in text.splitlines() if "zero" in l][0]
        assert "#" not in zero_line

    def test_negative_rejected(self):
        with pytest.raises(PlotError):
            bar_chart({"bad": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(PlotError):
            bar_chart({})
