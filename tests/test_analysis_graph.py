"""Tests for the project semantic index (DESIGN.md S25).

The index is the substrate the R7-R9 graph rules stand on, so its
contracts get direct coverage: symbol tables (including nested defs),
import-alias resolution (plain, ``as``, from-imports, relative),
call resolution (module functions, ``self.`` methods through the
class hierarchy, class instantiations landing on ``__init__``),
reverse edges, hop-bounded reachability, and the build-time stat the
CI wall-time guard reads.
"""

import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.core import analyze_paths, parse_module, parse_source
from repro.analysis.graph import build_index


def _info(module, source):
    return parse_source(textwrap.dedent(source), module=module)


def _index(*pairs):
    return build_index([_info(m, s) for m, s in pairs])


class TestSymbols:
    def test_functions_classes_methods(self):
        idx = _index(("pkg.mod", """
            def helper():
                pass

            class Thing:
                def method(self):
                    pass
        """))
        assert "pkg.mod.helper" in idx.functions
        assert "pkg.mod.Thing" in idx.classes
        assert "pkg.mod.Thing.method" in idx.functions
        cls = idx.classes["pkg.mod.Thing"]
        assert cls.methods["method"] == "pkg.mod.Thing.method"

    def test_nested_defs_indexed(self):
        idx = _index(("pkg.mod", """
            def outer():
                def inner():
                    pass
                return inner
        """))
        assert "pkg.mod.outer.inner" in idx.functions

    def test_defs_under_conditionals_indexed(self):
        idx = _index(("pkg.mod", """
            import sys

            if sys.version_info >= (3, 9):
                def compat():
                    pass
            else:
                def compat():
                    pass
        """))
        assert "pkg.mod.compat" in idx.functions

    def test_module_listings(self):
        idx = _index(
            ("pkg.a", "def f():\n    pass\n"),
            ("pkg.b", "class C:\n    pass\n"),
        )
        assert [f.qualname for f in idx.functions_in("pkg.a")] == [
            "pkg.a.f"
        ]
        assert [c.qualname for c in idx.classes_in("pkg.b")] == [
            "pkg.b.C"
        ]


class TestCallResolution:
    def test_from_import_call(self):
        idx = _index(
            ("pkg.util", "def helper():\n    pass\n"),
            ("pkg.main", """
                from pkg.util import helper

                def go():
                    helper()
            """),
        )
        assert "pkg.util.helper" in idx.callees("pkg.main.go")
        assert idx.callers("pkg.util.helper") == {"pkg.main.go"}

    def test_module_alias_call(self):
        idx = _index(
            ("pkg.util", "def helper():\n    pass\n"),
            ("pkg.main", """
                import pkg.util as u

                def go():
                    u.helper()
            """),
        )
        assert "pkg.util.helper" in idx.callees("pkg.main.go")

    def test_self_method_call(self):
        idx = _index(("pkg.mod", """
            class Thing:
                def outer(self):
                    self.inner()

                def inner(self):
                    pass
        """))
        assert "pkg.mod.Thing.inner" in idx.callees("pkg.mod.Thing.outer")

    def test_self_method_through_base_class(self):
        idx = _index(("pkg.mod", """
            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def go(self):
                    self.shared()
        """))
        assert "pkg.mod.Base.shared" in idx.callees("pkg.mod.Child.go")

    def test_instantiation_lands_on_init(self):
        idx = _index(("pkg.mod", """
            class Thing:
                def __init__(self):
                    pass

            def make():
                return Thing()
        """))
        assert "pkg.mod.Thing.__init__" in idx.callees("pkg.mod.make")
        site = next(
            c for c in idx.functions["pkg.mod.make"].calls
            if c.target == "pkg.mod.Thing"
        )
        assert site.kind == "class"

    def test_nested_def_bare_name(self):
        idx = _index(("pkg.mod", """
            def outer():
                def inner():
                    pass
                inner()
        """))
        assert "pkg.mod.outer.inner" in idx.callees("pkg.mod.outer")

    def test_receiver_variable_unresolved(self):
        # cache.put(...) on a parameter cannot be resolved — the call
        # site records the chain but no target (documented limit).
        idx = _index(("pkg.mod", """
            def use(cache):
                cache.put(1)
        """))
        assert idx.callees("pkg.mod.use") == set()


class TestHierarchyAndReachability:
    def test_base_chain_reaches_external_name(self):
        idx = _index(("pkg.mod", """
            from http.server import ThreadingHTTPServer

            class MyServer(ThreadingHTTPServer):
                pass
        """))
        chain = list(idx.base_chain("pkg.mod.MyServer"))
        assert chain[0] == "pkg.mod.MyServer"
        assert any(b.endswith("ThreadingHTTPServer") for b in chain[1:])

    def test_reachable_hop_bound(self):
        idx = _index(("pkg.mod", """
            def a():
                b()

            def b():
                c()

            def c():
                d()

            def d():
                pass
        """))
        hops = idx.reachable("pkg.mod.a", max_hops=2)
        assert hops["pkg.mod.b"] == 1
        assert hops["pkg.mod.c"] == 2
        assert "pkg.mod.d" not in hops

    def test_reverse_reachability(self):
        idx = _index(("pkg.mod", """
            def a():
                b()

            def b():
                pass
        """))
        up = idx.reachable("pkg.mod.b", max_hops=3, reverse=True)
        assert up["pkg.mod.a"] == 1


class TestBuildStats:
    def test_build_seconds_recorded(self):
        idx = _index(("pkg.mod", "def f():\n    pass\n"))
        assert idx.build_seconds >= 0.0

    def test_analyze_paths_fills_stats(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("def f():\n    pass\n")
        stats = {}
        analyze_paths([pkg], root=tmp_path, stats=stats)
        assert stats["graph_modules"] == 2
        assert stats["graph_build_seconds"] >= 0.0

    def test_no_graph_skips_build(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f():\n    pass\n")
        stats = {}
        analyze_paths([pkg], root=tmp_path, graph=False, stats=stats)
        assert "graph_build_seconds" not in stats


class TestParseCache:
    def test_reparse_only_on_change(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f():\n    pass\n")
        first = parse_module(target, root=tmp_path)
        again = parse_module(target, root=tmp_path)
        assert again is first
        # A content change (with a distinct mtime) must re-parse.
        time.sleep(0.01)
        target.write_text("def g():\n    pass\n")
        changed = parse_module(target, root=tmp_path)
        assert changed is not first
        assert "g" in changed.source

    def test_fixture_trees_get_dotted_names(self, tmp_path):
        nested = tmp_path / "pkg" / "sub"
        nested.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (nested / "__init__.py").write_text("")
        (nested / "mod.py").write_text("X = 1\n")
        info = parse_module(nested / "mod.py", root=tmp_path)
        assert info.module == "pkg.sub.mod"


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
