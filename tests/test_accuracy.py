"""Behavior-level accuracy model: Eq. 9-16 and the high-level wrapper."""

import math

import pytest

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
    cell_operating_voltage,
    output_voltage_actual,
    output_voltage_ideal,
    voltage_deviation,
)
from repro.accuracy.model import AccuracyModel
from repro.accuracy.propagation import (
    combine_error_rates,
    final_error_rates,
    propagate_layers,
)
from repro.accuracy.quantization import (
    avg_digital_deviation,
    avg_error_rate,
    max_digital_deviation,
    max_error_rate,
)
from repro.accuracy.variation import (
    sample_resistances,
    variation_error_bounds,
    worst_variation_error,
)
from repro.config import SimConfig
from repro.tech import get_memristor_model

import numpy as np


@pytest.fixture
def device():
    return get_memristor_model("RRAM")


@pytest.fixture
def ideal_device():
    return get_memristor_model("IDEAL")


SEG_45NM = 0.25  # ~45 nm wire segment resistance at the RRAM pitch


class TestInterconnectModel:
    def test_zero_wire_ideal_device_has_zero_error(self, ideal_device):
        eps = analog_error_rate(64, 64, 0.0, ideal_device)
        assert eps == pytest.approx(0.0, abs=1e-12)

    def test_wire_error_positive_and_growing_with_size(self, ideal_device):
        errors = [
            analog_error_rate(size, size, SEG_45NM, ideal_device)
            for size in (16, 64, 256, 1024)
        ]
        assert all(e > 0 for e in errors)
        assert errors == sorted(errors)

    def test_wire_error_grows_with_segment_resistance(self, ideal_device):
        fine = analog_error_rate(128, 128, 2.25, ideal_device)  # ~18 nm
        coarse = analog_error_rate(128, 128, 0.06, ideal_device)  # ~90 nm
        assert fine > coarse

    def test_nonlinearity_error_negative_for_small_arrays(self, device):
        eps = analog_error_rate(8, 8, SEG_45NM, device)
        assert eps < 0

    def test_u_shape_minimum_near_64(self, device):
        """Table V: the error magnitude dips around crossbar size 64 at
        the 45 nm wire node."""
        sizes = (8, 16, 32, 64, 128, 256)
        magnitudes = {
            size: abs(analog_error_rate(size, size, SEG_45NM, device))
            for size in sizes
        }
        best = min(magnitudes, key=magnitudes.get)
        assert best in (32, 64, 128)
        assert magnitudes[8] > magnitudes[best]
        assert magnitudes[256] > magnitudes[best]

    def test_operating_voltage_falls_with_rows(self, device):
        voltages = [
            cell_operating_voltage(rows, rows, SEG_45NM, device)
            for rows in (8, 32, 128, 512)
        ]
        assert voltages == sorted(voltages, reverse=True)
        assert all(0 < v <= device.read_voltage for v in voltages)

    def test_average_case_is_milder_than_worst(self, device):
        worst = abs(analog_error_rate(256, 256, SEG_45NM, device, "worst"))
        average = abs(
            analog_error_rate(256, 256, SEG_45NM, device, "average")
        )
        assert average < worst

    def test_unknown_case_raises(self, device):
        with pytest.raises(ValueError):
            analog_error_rate(8, 8, SEG_45NM, device, case="typical")

    def test_voltage_deviation_consistent_with_error_rate(self, device):
        ideal = output_voltage_ideal(64, device)
        actual = output_voltage_actual(64, 64, SEG_45NM, device)
        deviation = voltage_deviation(64, 64, SEG_45NM, device)
        assert deviation == pytest.approx(ideal - actual)
        eps = analog_error_rate(64, 64, SEG_45NM, device)
        assert eps == pytest.approx(deviation / ideal, rel=1e-9)

    def test_invalid_dimensions_raise(self, device):
        with pytest.raises(ValueError):
            analog_error_rate(0, 8, SEG_45NM, device)
        with pytest.raises(ValueError):
            analog_error_rate(8, 8, -1.0, device)


class TestQuantization:
    def test_paper_worked_example(self):
        """Sec. VI.C: k = 64, eps = 10 % -> MaxDigitalDeviation = 6."""
        assert max_digital_deviation(64, 0.10) == 6
        assert max_error_rate(64, 0.10) == pytest.approx(6 / 63)

    def test_max_deviation_formula(self):
        # floor((k - 1.5) eps + 0.5)
        assert max_digital_deviation(256, 0.05) == math.floor(
            254.5 * 0.05 + 0.5
        )

    def test_zero_epsilon_zero_deviation(self):
        assert max_digital_deviation(256, 0.0) == 0
        assert avg_digital_deviation(256, 0.0) == 0.0

    def test_small_epsilon_floors_to_zero(self):
        """Deviations below half a quantization step vanish (Eq. 12)."""
        assert max_error_rate(256, 0.001) == 0.0

    def test_average_below_max(self):
        for eps in (0.02, 0.05, 0.1, 0.3):
            assert avg_error_rate(256, eps) <= max_error_rate(256, eps)

    def test_error_rates_clamped_to_one(self):
        assert max_error_rate(4, 5.0) == 1.0

    def test_sign_is_ignored(self):
        assert max_error_rate(256, -0.05) == max_error_rate(256, 0.05)

    def test_monotone_in_epsilon(self):
        rates = [max_error_rate(256, e) for e in (0.01, 0.05, 0.1, 0.2)]
        assert rates == sorted(rates)

    def test_average_deviation_formula(self):
        k, eps = 16, 0.1
        expected = sum(math.floor(i * eps + 0.5) for i in range(k)) / k
        assert avg_digital_deviation(k, eps) == pytest.approx(expected)

    def test_too_few_levels_rejected(self):
        with pytest.raises(ValueError):
            max_error_rate(1, 0.1)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            max_error_rate(256, float("nan"))


class TestPropagation:
    def test_combine_matches_eq15(self):
        assert combine_error_rates(0.1, 0.05) == pytest.approx(
            1.1 * 1.05 - 1
        )

    def test_single_layer_reduces_to_quantization(self):
        eps = 0.08
        assert propagate_layers([eps], 256)[0] == max_error_rate(256, eps)

    def test_errors_accumulate_layer_by_layer(self):
        deltas = propagate_layers([0.05] * 4, 256)
        assert len(deltas) == 4
        assert all(b >= a for a, b in zip(deltas, deltas[1:]))

    def test_average_case_below_worst(self):
        eps = [0.06, 0.06, 0.06]
        worst = propagate_layers(eps, 256, case="worst")
        average = propagate_layers(eps, 256, case="average")
        assert all(a <= w for a, w in zip(average, worst))

    def test_final_error_rates_tuple(self):
        worst, average = final_error_rates([0.05, 0.05], 256)
        assert average <= worst
        assert final_error_rates([], 256) == (0.0, 0.0)

    def test_unknown_case_raises(self):
        with pytest.raises(ValueError):
            propagate_layers([0.1], 256, case="median")


class TestVariation:
    def test_zero_sigma_bounds_coincide(self, device):
        low, high = variation_error_bounds(64, 64, SEG_45NM, device)
        assert low == pytest.approx(high)

    def test_sigma_widens_the_band(self, device):
        noisy = device.with_sigma(0.3)
        base = abs(analog_error_rate(64, 64, SEG_45NM, device))
        worst = worst_variation_error(64, 64, SEG_45NM, noisy)
        assert worst > base

    def test_variation_monotone_in_sigma(self, device):
        worst = [
            worst_variation_error(
                128, 128, SEG_45NM, device.with_sigma(sigma)
            )
            for sigma in (0.0, 0.1, 0.2, 0.3)
        ]
        assert worst == sorted(worst)

    def test_sample_resistances_bounded(self, device, rng):
        ideal = np.full((32, 32), device.r_min)
        sampled = sample_resistances(ideal, 0.3, rng)
        assert np.all(sampled >= ideal * 0.7 - 1e-9)
        assert np.all(sampled <= ideal * 1.3 + 1e-9)

    def test_sample_zero_sigma_is_identity(self, device, rng):
        ideal = np.full((4, 4), device.r_min)
        assert np.array_equal(sample_resistances(ideal, 0.0, rng), ideal)

    def test_sample_normal_distribution_clipped(self, rng):
        ideal = np.full((64, 64), 1e5)
        sampled = sample_resistances(ideal, 0.1, rng, distribution="normal")
        assert np.all(sampled >= 1e5 * 0.7)

    def test_sample_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_resistances(np.ones((2, 2)), -0.1, rng)
        with pytest.raises(ValueError):
            sample_resistances(np.ones((2, 2)), 0.1, rng, distribution="exp")


class TestAccuracyModel:
    def test_epsilon_from_config(self):
        model = AccuracyModel(
            SimConfig(crossbar_size=128, interconnect_tech=45)
        )
        direct = abs(
            analog_error_rate(
                128, 128, model.segment_resistance, model.device,
                sense_resistance=DEFAULT_SENSE_RESISTANCE,
            )
        )
        assert model.crossbar_epsilon() == pytest.approx(direct)

    def test_network_accuracy_propagates(self):
        model = AccuracyModel(
            SimConfig(crossbar_size=128, interconnect_tech=28)
        )
        acc = model.network_accuracy(num_layers=3)
        assert len(acc.worst_by_layer) == 3
        assert acc.worst_error_rate >= acc.worst_by_layer[0]
        assert 0 <= acc.relative_accuracy <= 1

    def test_layer_sizes_override(self):
        model = AccuracyModel(
            SimConfig(crossbar_size=256, interconnect_tech=28)
        )
        acc = model.network_accuracy(layer_sizes=[64, 256])
        assert len(acc.worst_by_layer) == 2

    def test_variation_raises_epsilon(self):
        base = AccuracyModel(SimConfig(crossbar_size=128))
        noisy = AccuracyModel(SimConfig(crossbar_size=128, device_sigma=0.3))
        assert noisy.crossbar_epsilon() > base.crossbar_epsilon()

    def test_empty_network_rejected(self):
        model = AccuracyModel(SimConfig())
        with pytest.raises(ValueError):
            model.network_accuracy(layer_sizes=[])
