"""Netlist parser: round-trip with the generator and the solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.spice.netlist import generate_netlist
from repro.spice.parser import parse_netlist
from repro.spice.solver import CrossbarNetwork
from repro.tech import get_memristor_model


@pytest.fixture
def problem(rng):
    device = get_memristor_model("RRAM")
    levels = rng.integers(0, device.levels, size=(6, 5))
    resistances = np.vectorize(device.resistance_of_level)(levels)
    inputs = rng.uniform(0.1, 1.0, size=6)
    return resistances, inputs


class TestRoundTrip:
    def test_values_survive(self, problem):
        resistances, inputs = problem
        text = generate_netlist(resistances, inputs, 0.25, 1e3,
                                title="round trip")
        parsed = parse_netlist(text)
        assert parsed.title == "round trip"
        assert parsed.resistances.shape == resistances.shape
        assert parsed.resistances == pytest.approx(resistances, rel=1e-5)
        assert parsed.inputs == pytest.approx(inputs, rel=1e-5)
        assert parsed.wire_resistance == pytest.approx(0.25, rel=1e-6)
        assert parsed.sense_resistance == pytest.approx(1e3, rel=1e-6)

    def test_parsed_network_solves_identically(self, problem):
        """Exporting and re-importing must not change the physics."""
        resistances, inputs = problem
        direct = CrossbarNetwork(resistances, 0.25, 1e3).solve(inputs)
        parsed = parse_netlist(
            generate_netlist(resistances, inputs, 0.25, 1e3)
        )
        reloaded = parsed.build_network().solve(parsed.inputs)
        assert reloaded.output_voltages == pytest.approx(
            direct.output_voltages, rel=1e-4
        )

    def test_nonlinear_device_can_be_reattached(self, problem):
        device = get_memristor_model("RRAM")
        resistances, inputs = problem
        parsed = parse_netlist(
            generate_netlist(resistances, inputs, 0.25, 1e3)
        )
        solution = parsed.build_network(device=device).solve(parsed.inputs)
        assert solution.iterations > 1


class TestRobustness:
    def test_comments_and_case_tolerated(self):
        text = "\n".join([
            "* title line",
            "VIN0 in_0 0 DC 0.5",
            "RWIN0 in_0 wl_0_0 1.0",
            "RCELL0_0 wl_0_0 bl_0_0 100000",
            "RS0 bl_0_0 0 1000",
            ".op",
            ".end",
        ])
        parsed = parse_netlist(text)
        assert parsed.resistances.shape == (1, 1)

    def test_unknown_card_raises(self):
        with pytest.raises(SolverError, match="unrecognised card"):
            parse_netlist("Cload a b 1p")

    def test_missing_cells_raise(self):
        with pytest.raises(SolverError, match="no cell resistors"):
            parse_netlist("Vin0 in_0 0 DC 1\nRs0 b 0 1000")

    def test_incomplete_grid_raises(self):
        text = "\n".join([
            "Vin0 in_0 0 DC 1",
            "Vin1 in_1 0 DC 1",
            "Rcell0_0 a b 1e5",
            "Rcell1_1 c d 1e5",  # (0,1) and (1,0) missing
            "Rs0 e 0 1000",
            "Rs1 f 0 1000",
        ])
        with pytest.raises(SolverError, match="incomplete cell grid"):
            parse_netlist(text)

    def test_inconsistent_wires_raise(self):
        text = "\n".join([
            "Vin0 in_0 0 DC 1",
            "Rwin0 in_0 wl_0_0 1.0",
            "Rwl0_0 wl_0_0 wl_0_1 2.0",
            "Rcell0_0 wl_0_0 bl_0_0 1e5",
            "Rcell0_1 wl_0_1 bl_0_1 1e5",
            "Rs0 bl_0_0 0 1000",
            "Rs1 bl_0_1 0 1000",
        ])
        with pytest.raises(SolverError, match="inconsistent wire"):
            parse_netlist(text)

    def test_bad_value_raises(self):
        with pytest.raises(SolverError, match="cannot parse"):
            parse_netlist("Rcell0_0 a b not-a-number\nVin0 c 0 DC 1\nRs0 d 0 1k")
