"""Module registry: the customization hooks of Sec. III.E."""

import pytest

from repro.circuits.adder import AdderModule
from repro.circuits.base import CircuitModule, CustomModule
from repro.circuits.registry import ModuleRegistry
from repro.errors import ConfigError
from repro.report import Performance
from repro.tech import get_cmos_node


@pytest.fixture
def cmos():
    return get_cmos_node(45)


def test_custom_module_returns_supplied_numbers():
    perf = Performance(area=1e-6, dynamic_energy=2e-9, latency=3e-9)
    module = CustomModule("edram", perf)
    assert module.performance() is perf


def test_custom_module_requires_name():
    with pytest.raises(ValueError):
        CustomModule("", Performance())


def test_build_uses_default_factory(cmos):
    registry = ModuleRegistry()
    module = registry.build("adder", AdderModule, cmos=cmos, bits=8)
    assert isinstance(module, AdderModule)


def test_override_replaces_reference_design(cmos):
    registry = ModuleRegistry()
    registry.override("adder", lambda cmos, bits: AdderModule(cmos, bits * 2))
    module = registry.build("adder", AdderModule, cmos=cmos, bits=8)
    assert module.bits == 16


def test_override_fixed_pins_published_numbers(cmos):
    registry = ModuleRegistry()
    published = Performance(area=5e-7, dynamic_energy=1e-12)
    registry.override_fixed("read_circuit", published)
    module = registry.build("read_circuit", AdderModule, cmos=cmos, bits=8)
    assert module.performance() == published


def test_remove_slot_yields_zero_cost(cmos):
    """DAC/ADC-free structures (Sec. III.E.2, refs [24][30]) remove the
    converter slots entirely."""
    registry = ModuleRegistry()
    registry.remove("dac")
    module = registry.build("dac", AdderModule, cmos=cmos, bits=8)
    perf = module.performance()
    assert perf.area == 0 and perf.dynamic_energy == 0 and perf.latency == 0
    assert registry.is_removed("dac")


def test_restore_undoes_override_and_removal(cmos):
    registry = ModuleRegistry()
    registry.remove("dac")
    registry.restore("dac")
    assert not registry.is_removed("dac")
    module = registry.build("dac", AdderModule, cmos=cmos, bits=8)
    assert isinstance(module, AdderModule)


def test_override_after_remove_reinstates_slot(cmos):
    registry = ModuleRegistry()
    registry.remove("neuron")
    registry.override_fixed("neuron", Performance(area=1.0))
    module = registry.build("neuron", AdderModule, cmos=cmos, bits=8)
    assert module.performance().area == 1.0


def test_non_callable_factory_rejected():
    with pytest.raises(ConfigError):
        ModuleRegistry().override("adder", 42)


def test_copy_is_independent(cmos):
    registry = ModuleRegistry()
    registry.remove("dac")
    clone = registry.copy()
    clone.restore("dac")
    assert registry.is_removed("dac")
    assert not clone.is_removed("dac")


def test_circuit_module_repr():
    class Dummy(CircuitModule):
        kind = "dummy"

        def performance(self):
            return Performance()

    assert "dummy" in repr(Dummy())
