"""Job manager semantics: dedupe, lifecycle, cancellation."""

import threading
import time

import pytest

from repro.errors import JobCancelled, MnsimError
from repro.service.jobs import JobManager, JobState
from repro.service.schema import SimulationPayload

MC_PAYLOAD = {
    "kind": "montecarlo",
    "montecarlo": {"trials": 2, "seed": 0, "size": 8},
}


def payload(**overrides):
    doc = dict(MC_PAYLOAD)
    if overrides:
        doc["montecarlo"] = dict(doc["montecarlo"], **overrides)
    return SimulationPayload.from_dict(doc)


@pytest.fixture
def manager():
    mgr = JobManager()
    yield mgr
    mgr.shutdown()


class _CountingRunner:
    """Replacement for ``run_payload`` that counts engine entries."""

    def __init__(self, delay=0.0, error=None, poll_cancel=False):
        self.calls = 0
        self.lock = threading.Lock()
        self.delay = delay
        self.error = error
        self.poll_cancel = poll_cancel

    def __call__(self, payload, *, cache=None, metrics=None,
                 progress=None, should_cancel=None):
        with self.lock:
            self.calls += 1
        deadline = time.monotonic() + self.delay
        while time.monotonic() < deadline:
            if self.poll_cancel and should_cancel and should_cancel():
                raise JobCancelled("cancelled mid-run")
            time.sleep(0.005)
        if self.error is not None:
            raise self.error
        if progress is not None:
            progress(1, 1)
        return {"schema": "test", "ok": True}


def test_concurrent_submissions_execute_once(manager, monkeypatch):
    runner = _CountingRunner(delay=0.05)
    monkeypatch.setattr("repro.service.jobs.run_payload", runner)

    results = []
    results_lock = threading.Lock()

    def submit():
        record, created = manager.submit(payload())
        manager.wait(record.job_id, timeout=30)
        with results_lock:
            results.append((record.job_id, created,
                            manager.result_text(record.job_id)))

    threads = [threading.Thread(target=submit) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert runner.calls == 1, "N identical submissions must run once"
    ids = {job_id for job_id, _, _ in results}
    assert len(ids) == 1, "content-addressing must collapse the ids"
    created_flags = [created for _, created, _ in results]
    assert created_flags.count(True) == 1
    texts = {text for _, _, text in results}
    assert len(texts) == 1 and None not in texts


def test_done_job_serves_later_submissions(manager, monkeypatch):
    runner = _CountingRunner()
    monkeypatch.setattr("repro.service.jobs.run_payload", runner)
    record, created = manager.submit(payload())
    assert created
    assert manager.wait(record.job_id, timeout=30) == JobState.DONE

    again, created = manager.submit(payload())
    assert not created
    assert again is record
    assert runner.calls == 1


def test_cancel_queued_job_never_reaches_engine(manager, monkeypatch):
    runner = _CountingRunner(delay=0.3)
    monkeypatch.setattr("repro.service.jobs.run_payload", runner)

    blocker, _ = manager.submit(payload(seed=100))
    # The single worker is busy with `blocker`, so this one stays queued.
    victim, _ = manager.submit(payload(seed=101))
    assert victim.state == JobState.QUEUED

    state = manager.cancel(victim.job_id)
    assert state == JobState.CANCELLED
    assert manager.wait(victim.job_id, timeout=1) == JobState.CANCELLED
    assert manager.wait(blocker.job_id, timeout=30) == JobState.DONE
    assert runner.calls == 1, "a cancelled queued job must never run"
    states = [e.state for e in victim.events]
    assert states == [JobState.QUEUED, JobState.CANCELLED]


def test_cancel_running_job_stops_at_poll(manager, monkeypatch):
    runner = _CountingRunner(delay=10.0, poll_cancel=True)
    monkeypatch.setattr("repro.service.jobs.run_payload", runner)
    record, _ = manager.submit(payload(seed=102))
    deadline = time.monotonic() + 5
    while record.state != JobState.RUNNING:
        assert time.monotonic() < deadline
        time.sleep(0.005)
    manager.cancel(record.job_id)
    assert manager.wait(record.job_id, timeout=10) == JobState.CANCELLED
    assert manager.result_text(record.job_id) is None


def test_failed_job_reports_structured_error_and_retries(
    manager, monkeypatch
):
    runner = _CountingRunner(error=MnsimError("solver exploded"))
    monkeypatch.setattr("repro.service.jobs.run_payload", runner)
    record, _ = manager.submit(payload(seed=103))
    assert manager.wait(record.job_id, timeout=30) == JobState.FAILED
    assert record.error == {
        "type": "MnsimError", "message": "solver exploded",
    }

    # Failed jobs may be resubmitted: fresh record, same id, re-runs.
    retry, created = manager.submit(payload(seed=103))
    assert created
    assert retry.job_id == record.job_id
    manager.wait(retry.job_id, timeout=30)
    assert runner.calls == 2


def test_events_stream_progress_and_terminal_state(manager, monkeypatch):
    monkeypatch.setattr(
        "repro.service.jobs.run_payload", _CountingRunner()
    )
    record, _ = manager.submit(payload(seed=104))
    manager.wait(record.job_id, timeout=30)
    events = manager.events_since(record.job_id, after=0, timeout=0)
    kinds = [(e.event, e.state) for e in events]
    assert kinds[0] == ("state", JobState.QUEUED)
    assert kinds[-1] == ("state", JobState.DONE)
    assert ("progress", JobState.RUNNING) in kinds
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    # Resumption: events strictly after a checkpoint.
    tail = manager.events_since(record.job_id, after=seqs[-2], timeout=0)
    assert [e.seq for e in tail] == [seqs[-1]]


def test_total_seeded_from_payload_before_engine_runs(
    manager, monkeypatch
):
    """The payload's work estimate reaches the stream up front, even
    when the engine never reports progress itself."""

    def silent(payload, *, cache=None, metrics=None, progress=None,
               should_cancel=None):
        return {"schema": "test", "ok": True}

    monkeypatch.setattr("repro.service.jobs.run_payload", silent)
    record, _ = manager.submit(payload(seed=105))
    manager.wait(record.job_id, timeout=30)
    events = manager.events_since(record.job_id, after=0, timeout=0)
    first_progress = next(e for e in events if e.event == "progress")
    assert first_progress.total == 2  # montecarlo trials
    assert first_progress.done == 0


def test_final_progress_event_precedes_terminal_state(
    manager, monkeypatch
):
    """Ordering contract of ``events_since``: a successful job always
    ends with ``progress(done == total)`` then the terminal state."""

    def silent(payload, *, cache=None, metrics=None, progress=None,
               should_cancel=None):
        return {"schema": "test", "ok": True}

    monkeypatch.setattr("repro.service.jobs.run_payload", silent)
    record, _ = manager.submit(payload(seed=106))
    manager.wait(record.job_id, timeout=30)
    events = manager.events_since(record.job_id, after=0, timeout=0)
    assert events[-1].event == "state"
    assert events[-1].state == JobState.DONE
    final = events[-2]
    assert final.event == "progress"
    assert final.done == final.total == 2
    assert final.eta_seconds == 0.0


def test_engine_cache_dedupes_across_manager_restarts(tmp_path):
    cache_dir = str(tmp_path / "cache")

    first = JobManager(cache_dir=cache_dir)
    try:
        record, _ = first.submit(payload())
        assert first.wait(record.job_id, timeout=60) == JobState.DONE
        text = first.result_text(record.job_id)
    finally:
        first.shutdown()

    # A new manager (fresh process in real life) re-runs the payload but
    # every underlying trial is served from the sqlite cache, and the
    # result document is byte-identical.
    second = JobManager(cache_dir=cache_dir)
    try:
        record2, created = second.submit(payload())
        assert created  # no in-memory record survives the restart
        assert second.wait(record2.job_id, timeout=60) == JobState.DONE
        assert second.result_text(record2.job_id) == text
    finally:
        second.shutdown()


class TestLongPollIsolation:
    """events_since must wait out its timeout on *this* job's silence.

    The manager's condition variable is shared by every job, so the
    old single ``Condition.wait`` returned early (and empty) whenever
    any other job appended an event — a long-poll on a quiet job
    degenerated into a busy poll under concurrent load.
    """

    @staticmethod
    def _inject_running(manager, job_id, seed):
        from repro.service.jobs import JobRecord

        record = JobRecord(
            job_id=job_id, payload=payload(seed=seed),
            state=JobState.RUNNING,
        )
        with manager._wake:
            manager._jobs[job_id] = record
        return record

    def test_unrelated_jobs_events_do_not_end_the_poll(self, manager):
        noisy = self._inject_running(manager, "job-noisy", seed=1)
        self._inject_running(manager, "job-quiet", seed=2)

        stop = threading.Event()

        def chatter():
            while not stop.is_set():
                with manager._wake:
                    noisy.done += 1
                    manager._append_event(noisy, "progress")
                time.sleep(0.02)

        thread = threading.Thread(target=chatter, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            events = manager.events_since(
                "job-quiet", after=0, timeout=0.6
            )
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            thread.join(timeout=5)
        assert events == []
        # The broken wait returned at the noisy job's first notify
        # (~0.02 s); the predicate wait must hold the full timeout.
        assert elapsed >= 0.55
        assert len(manager.events_since("job-noisy", after=0)) >= 1

    def test_own_jobs_event_wakes_the_poll_promptly(self, manager):
        self._inject_running(manager, "job-noisy", seed=1)
        quiet = self._inject_running(manager, "job-quiet", seed=2)

        def append_later():
            time.sleep(0.1)
            with manager._wake:
                quiet.done = 1
                manager._append_event(quiet, "progress")

        thread = threading.Thread(target=append_later, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            events = manager.events_since(
                "job-quiet", after=0, timeout=10.0
            )
            elapsed = time.monotonic() - start
        finally:
            thread.join(timeout=5)
        assert [e.event for e in events] == ["progress"]
        assert elapsed < 5.0, "must wake on its own event, not timeout"
