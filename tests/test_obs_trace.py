"""Span tracing: nesting, exception safety, export, propagation."""

import json
import os
import time

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Each test starts and ends with tracing off and an empty buffer."""
    trace.disable()
    trace.clear()
    trace.activate(None)
    yield
    trace.disable()
    trace.clear()
    trace.activate(None)


class TestSpanNesting:
    def test_parent_child_linkage(self):
        trace.enable()
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = trace.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        trace.enable()
        with trace.span("root") as root:
            with trace.span("a") as a:
                pass
            with trace.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_attrs_recorded_and_settable(self):
        trace.enable()
        with trace.span("work", size=64) as s:
            s.set(iterations=3)
        record = trace.spans()[0]
        assert record["attrs"] == {"size": 64, "iterations": 3}

    def test_duration_is_positive(self):
        trace.enable()
        with trace.span("sleepy"):
            time.sleep(0.002)
        assert trace.spans()[0]["duration"] >= 0.002

    def test_span_ids_are_pid_prefixed_and_unique(self):
        trace.enable()
        with trace.span("a") as a:
            pass
        with trace.span("b") as b:
            pass
        assert a.span_id != b.span_id
        assert a.span_id.startswith(f"{os.getpid():x}-")


class TestExceptionSafety:
    def test_exception_finishes_span_and_records_error(self):
        trace.enable()
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("nope")
        record = trace.spans()[0]
        assert record["attrs"]["error"] == "ValueError"

    def test_context_restored_after_exception(self):
        trace.enable()
        with trace.span("outer") as outer:
            with pytest.raises(RuntimeError):
                with trace.span("failing"):
                    raise RuntimeError
            with trace.span("after") as after:
                pass
        assert after.parent_id == outer.span_id


class TestDisabledMode:
    def test_disabled_span_is_the_noop_singleton(self):
        first = trace.span("x")
        second = trace.span("y", attr=1)
        assert first is second
        assert first is trace._NOOP

    def test_noop_supports_full_protocol(self):
        with trace.span("x") as s:
            s.set(a=1).finish()
        assert trace.spans() == []

    def test_disabled_overhead_is_tiny(self):
        """Loose guard: a disabled span() call stays well under 20 us
        (measured ~90 ns; the bound only catches gross regressions)."""
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            trace.span("hot")
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 20e-6


class TestManualSpans:
    def test_begin_does_not_become_the_parent(self):
        trace.enable()
        handle = trace.begin("async-work")
        with trace.span("unrelated") as s:
            assert s.parent_id is None
        handle.finish()
        names = [r["name"] for r in trace.spans()]
        assert set(names) == {"async-work", "unrelated"}


class TestPropagation:
    def test_context_round_trip(self):
        trace.enable(debug=True)
        with trace.span("dispatch") as d:
            context = trace.current_context()
        assert context == {
            "enabled": True, "debug": True, "parent": d.span_id,
            "job": None,
        }

    def test_activate_adopts_remote_parent(self):
        trace.activate({"enabled": True, "debug": False, "parent": "me-1"})
        with trace.span("remote-child") as s:
            pass
        assert s.parent_id == "me-1"
        assert trace.enabled()

    def test_activate_none_disables(self):
        trace.enable()
        trace.activate(None)
        assert not trace.enabled()

    def test_activate_clears_fork_inherited_state(self):
        """Fork-start workers inherit the live contextvar and a copy of
        the buffer; activate() must reset both or merged traces get
        stale parents and duplicated spans."""
        trace.enable()
        with trace.span("pre-fork"):
            trace.activate(
                {"enabled": True, "debug": False, "parent": "chunk-9"}
            )
            assert trace.spans() == []
            with trace.span("in-worker") as s:
                pass
        assert s.parent_id == "chunk-9"

    def test_collect_drains_and_absorb_restores(self):
        trace.enable()
        with trace.span("one"):
            pass
        shipped = trace.collect()
        assert trace.spans() == []
        trace.absorb(shipped)
        assert [r["name"] for r in trace.spans()] == ["one"]


class TestChromeExport:
    def test_schema(self, tmp_path):
        trace.enable()
        with trace.span("outer", size=8):
            with trace.span("inner"):
                pass
        path = trace.export_chrome(tmp_path / "t.json")
        payload = json.loads(open(path).read())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta and meta[0]["name"] == "process_name"
        assert len(complete) == 2
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(
                event
            )
            assert "span_id" in event["args"]
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_export_accepts_explicit_spans(self, tmp_path):
        records = [{
            "name": "x", "span_id": "1-1", "parent_id": None,
            "pid": 42, "start": 1.0, "duration": 0.5, "attrs": {},
        }]
        path = trace.export_chrome(tmp_path / "x.json", records)
        payload = json.loads(open(path).read())
        lanes = {e["pid"] for e in payload["traceEvents"]}
        assert lanes == {42}
