"""The stage-DAG runner: ordering, progress, resume, cancellation."""

import pytest

from repro.campaign.dag import (
    STAGE_CACHE_KIND,
    DagRunner,
    Stage,
    get_executor,
    register_executor,
)
from repro.errors import ConfigError, JobCancelled
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics

CALLS = []


@register_executor("test.echo")
def _echo(stage, context):
    CALLS.append(stage.name)
    return stage.params.get("value", stage.name)


@register_executor("test.sum")
def _sum(stage, context):
    CALLS.append(stage.name)
    return sum(context.upstream.values())


@register_executor("test.progress")
def _progress(stage, context):
    CALLS.append(stage.name)
    for done in range(1, stage.weight + 1):
        context.progress(done, stage.weight)
    return stage.name


@pytest.fixture(autouse=True)
def _clear_calls():
    CALLS.clear()
    yield
    CALLS.clear()


class TestGraphValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            DagRunner([Stage("a", "test.echo"), Stage("a", "test.echo")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigError, match="unknown stage"):
            DagRunner([Stage("a", "test.echo", depends_on=("ghost",))])

    def test_self_dependency_rejected(self):
        with pytest.raises(ConfigError, match="itself"):
            DagRunner([Stage("a", "test.echo", depends_on=("a",))])

    def test_cycles_rejected(self):
        with pytest.raises(ConfigError, match="cycle"):
            DagRunner([
                Stage("a", "test.echo", depends_on=("b",)),
                Stage("b", "test.echo", depends_on=("a",)),
            ])

    def test_unknown_executor_named_in_error(self):
        with pytest.raises(ConfigError, match="test.missing"):
            get_executor("test.missing")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_executor("test.echo")(lambda stage, context: None)


class TestExecution:
    def test_deterministic_topological_order(self):
        # Diamond written out of order: dependencies still run first,
        # ready stages keep input order (b before c).
        runner = DagRunner([
            Stage("d", "test.sum", depends_on=("b", "c")),
            Stage("b", "test.echo", params={"value": 1},
                  depends_on=("a",)),
            Stage("c", "test.echo", params={"value": 2},
                  depends_on=("a",)),
            Stage("a", "test.echo", params={"value": 0}),
        ])
        results = runner.run()
        assert CALLS == ["a", "b", "c", "d"]
        assert results["d"] == 3

    def test_upstream_is_restricted_to_declared_dependencies(self):
        seen = {}

        @register_executor("test.spy")
        def _spy(stage, context):
            seen.update(context.upstream)
            return None

        runner = DagRunner([
            Stage("a", "test.echo", params={"value": 1}),
            Stage("b", "test.echo", params={"value": 2}),
            Stage("spy", "test.spy", depends_on=("b",)),
        ])
        runner.run()
        assert seen == {"b": 2}

    def test_progress_remapped_onto_campaign_axis(self):
        reports = []
        runner = DagRunner(
            [
                Stage("first", "test.progress", weight=2),
                Stage("second", "test.progress", weight=3,
                      depends_on=("first",)),
            ],
            progress=lambda done, total: reports.append((done, total)),
        )
        runner.run()
        assert reports[0] == (0, 5)
        assert reports[-1] == (5, 5)
        done_values = [done for done, _total in reports]
        assert done_values == sorted(done_values), "axis must be monotone"
        assert (2 + 3, 5) in reports  # second stage lands at the total

    def test_cancellation_at_stage_boundary(self):
        cancelled = {"flag": False}

        @register_executor("test.cancel-after")
        def _cancel_after(stage, context):
            cancelled["flag"] = True
            return None

        runner = DagRunner(
            [
                Stage("a", "test.cancel-after"),
                Stage("b", "test.echo", depends_on=("a",)),
            ],
            should_cancel=lambda: cancelled["flag"],
        )
        with pytest.raises(JobCancelled):
            runner.run()
        assert CALLS == [], "stage b must never start"


class TestStageResume:
    def _stages(self):
        return [
            Stage("work", "test.progress", weight=2, cache_key="k-work"),
            Stage("tail", "test.echo", depends_on=("work",)),
        ]

    def test_completed_stage_replays_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = DagRunner(self._stages(), cache=cache)
        assert first.run()["work"] == "work"
        assert first.stage_stats["work"]["resumed"] is False
        assert cache.get("k-work") == "work"

        CALLS.clear()
        second = DagRunner(self._stages(), cache=cache)
        assert second.run()["work"] == "work"
        assert second.stage_stats["work"]["resumed"] is True
        assert "work" not in CALLS, "resumed stage must not re-execute"

    def test_uncached_stages_still_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k-work", STAGE_CACHE_KIND, "work")
        runner = DagRunner(self._stages(), cache=cache)
        runner.run()
        assert CALLS == ["tail"], "only the uncached stage executes"

    def test_no_cache_key_means_no_stage_caching(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        stages = [Stage("plain", "test.echo")]
        DagRunner(stages, cache=cache).run()
        CALLS.clear()
        DagRunner(stages, cache=cache).run()
        assert CALLS == ["plain"]

    def test_each_attempt_gets_a_fresh_tracker(self):
        # Stage one drives the tracker to done=4; without reset, stage
        # two's report of done=1 would be clamped away and the stage
        # would finish with a stale count (the frozen-ETA bug).
        runner = DagRunner([
            Stage("one", "test.progress", weight=4),
            Stage("two", "test.progress", weight=1, depends_on=("one",)),
        ])
        runner.run()
        assert runner._tracker.done == 1
        assert runner._tracker.total == 1

    def test_stage_stats_count_engine_deltas(self):
        metrics = RunMetrics()

        @register_executor("test.count")
        def _count(stage, context):
            context.metrics.count("jobs_total", 3)
            context.metrics.count("cache_hits", 1)
            return None

        runner = DagRunner(
            [Stage("n", "test.count")], metrics=metrics
        )
        runner.run()
        assert runner.stage_stats["n"]["jobs"] == 3
        assert runner.stage_stats["n"]["cache_hits"] == 1
