"""Technology substrate: CMOS nodes, interconnect, memristor devices."""

import math

import pytest

from repro.errors import TechnologyError
from repro.tech import (
    CellType,
    available_cmos_nodes,
    available_interconnect_nodes,
    available_memristor_models,
    get_cmos_node,
    get_interconnect_node,
    get_memristor_model,
)
from repro.units import NM


class TestCmos:
    def test_all_published_nodes_available(self):
        assert {130, 90, 65, 45, 32, 28, 22, 18} <= set(available_cmos_nodes())

    def test_unknown_node_raises(self):
        with pytest.raises(TechnologyError, match="unknown CMOS node"):
            get_cmos_node(7)

    def test_scaling_monotonic_vdd_and_delay(self):
        nodes = [get_cmos_node(nm) for nm in (130, 90, 65, 45, 32)]
        vdds = [n.vdd for n in nodes]
        fo4s = [n.fo4_delay for n in nodes]
        assert vdds == sorted(vdds, reverse=True)
        assert fo4s == sorted(fo4s, reverse=True)

    def test_gate_area_scales_with_node_squared(self):
        big, small = get_cmos_node(90), get_cmos_node(45)
        ratio = big.gate_area(100) / small.gate_area(100)
        assert ratio == pytest.approx((90 / 45) ** 2)

    def test_gate_energy_positive_and_linear_in_count(self):
        node = get_cmos_node(45)
        assert node.gate_energy(10) == pytest.approx(10 * node.gate_energy(1))
        assert node.gate_energy(1) > 0

    def test_gate_delay_linear_in_depth(self):
        node = get_cmos_node(65)
        assert node.gate_delay(4) == pytest.approx(4 * node.fo4_delay)

    def test_node_nm_round_trips(self):
        for nm in available_cmos_nodes():
            assert get_cmos_node(nm).node_nm == nm


class TestInterconnect:
    def test_all_paper_nodes_available(self):
        assert {18, 22, 28, 36, 45, 90} <= set(available_interconnect_nodes())

    def test_unknown_node_raises(self):
        with pytest.raises(TechnologyError, match="unknown interconnect"):
            get_interconnect_node(10)

    def test_resistance_rises_as_wires_shrink(self):
        nodes = [get_interconnect_node(nm) for nm in (90, 45, 28, 22, 18)]
        resistances = [n.resistance_per_length for n in nodes]
        assert resistances == sorted(resistances)

    def test_segment_resistance_scales_with_pitch(self):
        node = get_interconnect_node(45)
        assert node.segment_resistance(300 * NM) == pytest.approx(
            2 * node.segment_resistance(150 * NM)
        )

    def test_45nm_segment_resistance_calibration(self):
        """The accuracy-model calibration assumed ~0.25 ohm/segment at
        45 nm for the reference RRAM pitch (150 nm)."""
        node = get_interconnect_node(45)
        r = node.segment_resistance(150 * NM)
        assert 0.15 < r < 0.4

    def test_capacitance_positive(self):
        node = get_interconnect_node(28)
        assert node.segment_capacitance(150 * NM) > 0


class TestMemristor:
    def test_builtin_models(self):
        assert {"RRAM", "RRAM-4BIT", "PCM", "IDEAL"} <= set(
            available_memristor_models()
        )

    def test_lookup_is_case_insensitive(self):
        assert get_memristor_model("rram").name == "RRAM"

    def test_unknown_model_raises(self):
        with pytest.raises(TechnologyError, match="unknown memristor"):
            get_memristor_model("FLASH")

    def test_cell_area_formulas(self):
        device = get_memristor_model("RRAM")
        f2 = device.feature_size**2
        # Eq. 7: 3(W/L + 1) F^2 with W/L = 2 -> 9 F^2.
        assert device.cell_area(CellType.ONE_T_ONE_R) == pytest.approx(9 * f2)
        # Eq. 8: 4 F^2.
        assert device.cell_area(CellType.CROSS_POINT) == pytest.approx(4 * f2)

    def test_cross_point_is_denser(self):
        device = get_memristor_model("RRAM")
        assert device.cell_area(CellType.CROSS_POINT) < device.cell_area(
            CellType.ONE_T_ONE_R
        )

    def test_levels_from_precision_bits(self):
        assert get_memristor_model("RRAM").levels == 128  # 7-bit
        assert get_memristor_model("PCM").levels == 16  # 4-bit

    def test_conductance_levels_span_the_window(self):
        device = get_memristor_model("RRAM")
        assert device.resistance_of_level(0) == pytest.approx(device.r_max)
        assert device.resistance_of_level(device.levels - 1) == (
            pytest.approx(device.r_min)
        )

    def test_conductance_levels_monotonic(self):
        device = get_memristor_model("RRAM")
        conductances = [
            device.conductance_of_level(i) for i in range(device.levels)
        ]
        assert conductances == sorted(conductances)

    def test_level_out_of_range_raises(self):
        device = get_memristor_model("RRAM")
        with pytest.raises(ValueError):
            device.conductance_of_level(device.levels)
        with pytest.raises(ValueError):
            device.conductance_of_level(-1)

    def test_harmonic_mean_between_extremes(self):
        device = get_memristor_model("RRAM")
        h = device.harmonic_mean_resistance
        assert device.r_min < h < device.r_max
        expected = 2 * device.r_min * device.r_max / (
            device.r_min + device.r_max
        )
        assert h == pytest.approx(expected)

    def test_nonlinearity_reduces_resistance_at_bias(self):
        device = get_memristor_model("RRAM")
        r = device.r_min
        assert device.actual_resistance(r, 0.0) == r
        assert device.actual_resistance(r, 0.8) < r

    def test_nonlinearity_monotone_in_voltage(self):
        device = get_memristor_model("RRAM")
        factors = [device.nonlinearity_factor(v) for v in (0.1, 0.4, 0.8, 1.0)]
        assert factors == sorted(factors)
        assert all(0 <= f < 1 for f in factors)

    def test_ideal_device_is_ohmic(self):
        device = get_memristor_model("IDEAL")
        assert device.actual_resistance(1e5, 1.0) == 1e5
        assert device.nonlinearity_factor(1.0) == 0.0

    def test_current_matches_ohms_law_at_small_bias(self):
        device = get_memristor_model("RRAM")
        r = 1e6
        v = 1e-4
        assert device.current(r, v) == pytest.approx(v / r, rel=1e-6)

    def test_with_sigma_and_overrides(self):
        device = get_memristor_model("RRAM")
        assert device.with_sigma(0.25).sigma == 0.25
        changed = device.with_overrides(r_min=500.0, r_max=500e3)
        assert (changed.r_min, changed.r_max) == (500.0, 500e3)
        assert device.r_min != 500.0  # original untouched

    def test_invalid_construction(self):
        device = get_memristor_model("RRAM")
        with pytest.raises(TechnologyError):
            device.with_overrides(r_min=-1.0)
        with pytest.raises(TechnologyError):
            device.with_overrides(r_min=2e7)  # r_min > r_max
        with pytest.raises(TechnologyError):
            device.with_sigma(0.9)

    def test_write_energy_positive(self):
        assert get_memristor_model("RRAM").write_energy_per_cell() > 0

    def test_cell_type_parser(self):
        assert CellType.from_string("1t1r") is CellType.ONE_T_ONE_R
        with pytest.raises(TechnologyError):
            CellType.from_string("2T2R")


class TestAdditionalDevices:
    def test_memory_window_device_matches_table1(self):
        device = get_memristor_model("RRAM-MEMORY")
        assert device.r_min == 500.0
        assert device.r_max == 500e3

    def test_memory_device_usable_in_config(self):
        from repro.config import SimConfig

        config = SimConfig(memristor_model="RRAM-MEMORY")
        assert config.device.harmonic_mean_resistance < 1100

    def test_compute_window_far_above_memory_window(self):
        compute = get_memristor_model("RRAM")
        memory = get_memristor_model("RRAM-MEMORY")
        assert compute.r_min / memory.r_min >= 100
