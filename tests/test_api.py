"""Public API facade: everything advertised in ``repro.__all__`` works."""

import importlib

import pytest

import repro


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_docstring_flow():
    """The module docstring's quickstart must actually run."""
    config = repro.SimConfig(crossbar_size=128, cmos_tech=45)
    accelerator = repro.Accelerator(
        config, repro.mlp([784, 256, 10], name="demo")
    )
    summary = accelerator.summary()
    assert summary.area > 0
    assert 0 <= summary.worst_error_rate <= 1


@pytest.mark.parametrize(
    "module",
    [
        "repro.tech",
        "repro.circuits",
        "repro.spice",
        "repro.accuracy",
        "repro.nn",
        "repro.arch",
        "repro.dse",
        "repro.related",
        "repro.functional",
        "repro.cli",
    ],
)
def test_subpackages_importable(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} needs a module docstring"


def test_subpackage_alls_resolve():
    for name in (
        "repro.tech", "repro.circuits", "repro.spice", "repro.accuracy",
        "repro.nn", "repro.arch", "repro.dse", "repro.related",
        "repro.functional",
    ):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol}"


def test_exceptions_form_a_hierarchy():
    for exc in (repro.ConfigError, repro.TechnologyError,
                repro.MappingError, repro.SolverError,
                repro.ExplorationError):
        assert issubclass(exc, repro.MnsimError)


def test_doctests_in_documented_modules():
    """Docstring examples must stay executable."""
    import doctest

    from repro import units
    from repro.arch import isa

    for module in (units, isa):
        failures, _tests = doctest.testmod(module)
        assert failures == 0, f"doctest failures in {module.__name__}"
