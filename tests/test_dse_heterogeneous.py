"""Heterogeneous per-bank design-space exploration."""

import pytest

from repro.config import SimConfig
from repro.dse.heterogeneous import (
    HeterogeneousDesign,
    optimise_heterogeneous,
    uniform_best,
)
from repro.errors import ExplorationError
from repro.nn.networks import mlp

BASE = SimConfig(cmos_tech=45, interconnect_tech=45, weight_bits=4,
                 signal_bits=8)
# A deliberately lopsided network: a huge layer next to a tiny one.
NETWORK = mlp([2048, 1024, 32], name="lopsided")
SIZES = (32, 64, 128, 256, 512)
DEGREES = (1, 16, 256)


@pytest.fixture(scope="module")
def hetero_area():
    return optimise_heterogeneous(
        BASE, NETWORK, metric="area",
        crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
    )


@pytest.fixture(scope="module")
def uniform_area():
    return uniform_best(
        BASE, NETWORK, metric="area",
        crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
    )


class TestDecomposition:
    def test_one_choice_per_bank(self, hetero_area):
        assert len(hetero_area.choices) == NETWORK.depth
        assert [c.layer_index for c in hetero_area.choices] == [0, 1]

    def test_totals_are_sums_and_maxima(self, hetero_area):
        assert hetero_area.area == pytest.approx(
            sum(c.area for c in hetero_area.choices)
        )
        assert hetero_area.pipeline_cycle == pytest.approx(
            max(c.pass_latency for c in hetero_area.choices)
        )


class TestDominance:
    def test_heterogeneous_never_worse_than_uniform(
        self, hetero_area, uniform_area
    ):
        """Per-bank optimisation of a decomposable metric dominates any
        uniform assignment by construction."""
        assert hetero_area.area <= uniform_area.area + 1e-18

    def test_lopsided_network_benefits(self, hetero_area):
        """The big layer and the small layer pick different crossbars."""
        sizes = {c.crossbar_size for c in hetero_area.choices}
        assert len(sizes) > 1

    def test_energy_metric_also_dominates(self):
        hetero = optimise_heterogeneous(
            BASE, NETWORK, metric="energy",
            crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
        )
        uniform = uniform_best(
            BASE, NETWORK, metric="energy",
            crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
        )
        assert hetero.energy <= uniform.energy + 1e-18


class TestErrorBudget:
    def test_constrained_design_meets_the_bound(self):
        design = optimise_heterogeneous(
            BASE, NETWORK, metric="area",
            crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
            max_error_rate=0.10,
        )
        assert design.worst_error_rate <= 0.10 + 1e-12

    def test_impossible_budget_raises(self):
        with pytest.raises(ExplorationError, match="error budget"):
            optimise_heterogeneous(
                BASE, NETWORK, metric="area",
                crossbar_sizes=(1024,), parallelism_degrees=(1,),
                max_error_rate=1e-9,
            )


class TestValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ExplorationError):
            optimise_heterogeneous(BASE, NETWORK, metric="speedup")
        with pytest.raises(ExplorationError):
            uniform_best(BASE, NETWORK, metric="speedup")

    def test_bad_error_rate_rejected(self):
        with pytest.raises(ExplorationError):
            optimise_heterogeneous(BASE, NETWORK, max_error_rate=0.0)

    def test_uniform_infeasible_constraints_raise(self):
        with pytest.raises(ExplorationError):
            uniform_best(
                BASE, NETWORK, crossbar_sizes=(1024,),
                parallelism_degrees=(1,), max_error_rate=1e-9,
            )
