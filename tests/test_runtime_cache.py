"""On-disk result cache: persistence, stats, versioned invalidation."""

import pytest

from repro.runtime.cache import ResultCache, default_cache_dir


@pytest.fixture
def cache(tmp_path):
    with ResultCache(tmp_path / "cache") as instance:
        yield instance


class TestRoundTrip:
    def test_put_get(self, cache):
        cache.put("k1", "test", {"a": 1.5})
        assert cache.get("k1") == {"a": 1.5}

    def test_missing_key_is_none(self, cache):
        assert cache.get("nope") is None

    def test_get_many_partial(self, cache):
        cache.put_many([("a", "t", 1), ("b", "t", 2)])
        found = cache.get_many(["a", "b", "c"])
        assert found == {"a": 1, "b": 2}

    def test_overwrite_replaces(self, cache):
        cache.put("k", "t", 1)
        cache.put("k", "t", 2)
        assert cache.get("k") == 2
        assert cache.stats().entries == 1

    def test_persists_across_instances(self, tmp_path):
        with ResultCache(tmp_path / "c") as first:
            first.put("k", "t", [1, 2, 3])
        with ResultCache(tmp_path / "c") as second:
            assert second.get("k") == [1, 2, 3]


class TestStats:
    def test_hit_miss_accounting(self, cache):
        cache.put("a", "t", 1)
        cache.get_many(["a", "b", "c"])
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 2, 1)
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_idle_hit_rate_is_zero(self, cache):
        assert cache.stats().hit_rate == 0.0


class TestVersioning:
    def test_other_version_is_invisible(self, tmp_path):
        with ResultCache(tmp_path / "c", schema_version="v1") as old:
            old.put("k", "t", 1)
        with ResultCache(tmp_path / "c", schema_version="v2") as new:
            assert new.get("k") is None
            assert new.stats().stale_entries == 1

    def test_prune_stale(self, tmp_path):
        with ResultCache(tmp_path / "c", schema_version="v1") as old:
            old.put("k", "t", 1)
        with ResultCache(tmp_path / "c", schema_version="v2") as new:
            new.put("fresh", "t", 2)
            assert new.prune_stale() == 1
            stats = new.stats()
            assert (stats.entries, stats.stale_entries) == (1, 0)

    def test_clear_removes_everything(self, cache):
        cache.put_many([("a", "t", 1), ("b", "t", 2)])
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestDefaultDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"


class TestKeyStability:
    """Regression: equal configs must land on the same cache row.

    The key derivation flows through ``runtime.jobs.canonical``; these
    pin the float/dict edge cases that used to fork equal inputs onto
    distinct rows (or crash outright).
    """

    def test_equal_configs_hit_the_same_row(self, cache):
        from repro.config import SimConfig
        from repro.runtime.jobs import content_key

        a = SimConfig()
        b = SimConfig()  # equal by construction
        cache.put(content_key(a.to_dict()), "point", {"power": 1.0})
        assert cache.get(content_key(b.to_dict())) == {"power": 1.0}

    def test_negative_zero_config_hits_positive_zero_row(self, cache):
        from repro.runtime.jobs import content_key

        spec = {"sigma": 0.0, "nested": {"offset": 0.0}}
        twin = {"nested": {"offset": -0.0}, "sigma": -0.0}
        cache.put(content_key(spec), "point", 7)
        assert cache.get(content_key(twin)) == 7

    def test_nested_dict_key_order_hits_the_same_row(self, cache):
        from repro.runtime.jobs import content_key

        a = {"outer": {"x": 1, "y": {"b": 2, "a": 1}}}
        b = {"outer": {"y": {"a": 1, "b": 2}, "x": 1}}
        cache.put(content_key(a), "point", "same")
        assert cache.get(content_key(b)) == "same"

    def test_nan_configs_share_a_row_distinct_from_the_string(self, cache):
        from repro.runtime.jobs import content_key

        nan_key = content_key({"threshold": float("nan")})
        str_key = content_key({"threshold": "nan"})
        assert nan_key != str_key
        cache.put(nan_key, "point", "float-nan")
        assert cache.get(content_key({"threshold": float("nan")})) == (
            "float-nan"
        )
        assert cache.get(str_key) is None
