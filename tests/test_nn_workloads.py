"""Synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.networks import validation_mlp
from repro.nn.workloads import (
    crossbar_workload,
    image_blocks,
    random_inputs,
    random_weights,
)
from repro.tech import get_memristor_model


class TestRandomWeights:
    def test_shapes_match_layers(self, rng):
        network = validation_mlp()
        weights = random_weights(network, rng)
        for layer, matrix in zip(network.layers, weights):
            assert matrix.shape == layer.weight_shape

    def test_fan_in_scaling(self, rng):
        network = validation_mlp()
        weights = random_weights(network, rng)
        scale = 1.0 / np.sqrt(128)
        assert np.max(np.abs(weights[0])) <= scale

    def test_normal_distribution_supported(self, rng):
        weights = random_weights(validation_mlp(), rng,
                                 distribution="normal")
        assert len(weights) == 2

    def test_unknown_distribution_rejected(self, rng):
        with pytest.raises(ConfigError):
            random_weights(validation_mlp(), rng, distribution="cauchy")

    def test_seeded_reproducibility(self):
        a = random_weights(validation_mlp(), np.random.default_rng(5))
        b = random_weights(validation_mlp(), np.random.default_rng(5))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestRandomInputs:
    def test_shape_and_range(self, rng):
        network = validation_mlp()
        batch = random_inputs(network, rng, batch=7)
        assert batch.shape == (7, 128)
        assert np.all(batch > -1) and np.all(batch < 1)

    def test_unsigned_range(self, rng):
        batch = random_inputs(validation_mlp(), rng, signed=False)
        assert np.all(batch >= 0)

    def test_invalid_batch(self, rng):
        with pytest.raises(ConfigError):
            random_inputs(validation_mlp(), rng, batch=0)


class TestImageBlocks:
    def test_shape_and_bounds(self, rng):
        blocks = image_blocks(rng, count=5, size=8)
        assert blocks.shape == (5, 64)
        assert np.max(np.abs(blocks)) <= 1.0 + 1e-12

    def test_blocks_are_smooth(self, rng):
        """Neighbouring pixels correlate strongly — the low-frequency
        statistic the JPEG autoencoder expects."""
        blocks = image_blocks(rng, count=20, size=8)
        images = blocks.reshape(20, 8, 8)
        horizontal_diff = np.abs(np.diff(images, axis=2)).mean()
        random_pixels = np.abs(
            images - rng.permuted(images.reshape(20, -1), axis=1).reshape(
                images.shape
            )
        ).mean()
        assert horizontal_diff < random_pixels

    def test_invalid_args(self, rng):
        with pytest.raises(ConfigError):
            image_blocks(rng, count=0)
        with pytest.raises(ConfigError):
            image_blocks(rng, size=1)


class TestCrossbarWorkload:
    def test_shapes_and_resistance_window(self, rng):
        device = get_memristor_model("RRAM")
        weights, resistances, inputs = crossbar_workload(
            device, rows=32, cols=16, rng=rng
        )
        assert weights.shape == (16, 32)
        assert resistances.shape == (32, 16)
        assert inputs.shape == (32,)
        assert np.all(resistances >= device.r_min * (1 - 1e-9))
        assert np.all(resistances <= device.r_max * (1 + 1e-9))

    def test_solver_accepts_the_workload(self, rng):
        from repro.spice.solver import CrossbarNetwork

        device = get_memristor_model("RRAM")
        _w, resistances, inputs = crossbar_workload(device, 8, 8, rng)
        solution = CrossbarNetwork(resistances, 0.25, 1e3).solve(inputs)
        assert solution.output_voltages.shape == (8,)

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ConfigError):
            crossbar_workload(get_memristor_model("RRAM"), 0, 8, rng)
