"""Golden regression pins: exact values of key model outputs.

These tests freeze the numeric behaviour of the shipped models so
accidental drift (a changed constant, a refactor that alters an
energy term) is caught immediately.  The values were recorded from the
calibrated release build; a *deliberate* model change must update them
and note why.
"""

import pytest

from repro.accuracy.interconnect import analog_error_rate
from repro.accuracy.quantization import max_digital_deviation
from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.nn.networks import large_bank_layer, validation_mlp
from repro.tech import get_cmos_node, get_interconnect_node, get_memristor_model
from repro.tech.memristor import CellType


class TestTechnologyGolden:
    def test_rram_window(self):
        device = get_memristor_model("RRAM")
        assert device.r_min == 100e3
        assert device.r_max == 10e6
        assert device.harmonic_mean_resistance == pytest.approx(
            198019.80198, rel=1e-9
        )

    def test_cell_geometry(self):
        device = get_memristor_model("RRAM")
        assert device.cell_area(CellType.ONE_T_ONE_R) == pytest.approx(
            2.25e-14
        )
        assert device.cell_pitch(CellType.ONE_T_ONE_R) == pytest.approx(
            1.5e-7
        )

    def test_45nm_segment_resistance(self):
        wire = get_interconnect_node(45)
        device = get_memristor_model("RRAM")
        r = wire.segment_resistance(
            device.cell_pitch(CellType.ONE_T_ONE_R)
        )
        assert r == pytest.approx(0.25021, rel=1e-3)

    def test_90nm_gate_constants(self):
        cmos = get_cmos_node(90)
        assert cmos.vdd == 1.20
        assert cmos.fo4_delay == pytest.approx(35e-12)
        assert cmos.gate_area(1) == pytest.approx(400 * (90e-9) ** 2)


class TestAccuracyGolden:
    def test_calibrated_error_curve_at_45nm(self):
        """The Table V reproduction values (worst case)."""
        device = get_memristor_model("RRAM")
        r = 0.2497
        expected = {
            8: -0.0332, 16: -0.0263, 32: -0.0163,
            64: -0.0038, 128: 0.0123, 256: 0.0382,
        }
        for size, value in expected.items():
            assert analog_error_rate(size, size, r, device) == (
                pytest.approx(value, abs=2e-4)
            )

    def test_paper_worked_quantization_example(self):
        assert max_digital_deviation(64, 0.10) == 6


class TestAcceleratorGolden:
    def test_validation_mlp_summary(self):
        """The Table II design point at the shipped constants."""
        config = SimConfig(
            crossbar_size=128, cmos_tech=90, interconnect_tech=28,
            weight_bits=8, signal_bits=8,
        )
        summary = Accelerator(config, validation_mlp()).summary()
        assert summary.area == pytest.approx(2.50e-6, rel=0.1)
        assert summary.energy_per_sample == pytest.approx(
            1.77e-8, rel=0.15
        )
        assert summary.compute_latency == pytest.approx(92.7e-9, rel=0.1)
        assert summary.relative_accuracy == pytest.approx(0.9768,
                                                          abs=0.005)

    def test_large_bank_energy_optimum_region(self):
        """The Table IV energy-optimal point's headline values."""
        config = SimConfig(
            crossbar_size=256, cmos_tech=45, interconnect_tech=45,
            weight_bits=4, signal_bits=8, parallelism_degree=256,
        )
        summary = Accelerator(config, large_bank_layer()).summary()
        assert summary.energy_per_sample == pytest.approx(4.25e-7,
                                                          rel=0.1)
        assert summary.worst_error_rate == pytest.approx(0.0392,
                                                         abs=0.003)

    def test_structure_counts_are_stable(self):
        config = SimConfig(crossbar_size=128, weight_bits=8)
        accelerator = Accelerator(config, validation_mlp())
        assert accelerator.total_units == 2
        assert accelerator.total_crossbars == 4
