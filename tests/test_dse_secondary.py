"""Secondary optimization targets in the explorer (Sec. VII.C.1)."""

import pytest

from repro.config import SimConfig
from repro.dse.explorer import (
    explore,
    optimal,
    optimal_with_secondary,
)
from repro.dse.space import DesignSpace
from repro.errors import ExplorationError
from repro.nn.networks import large_bank_layer


@pytest.fixture(scope="module")
def points():
    base = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
    space = DesignSpace(
        crossbar_sizes=(64, 128, 256),
        parallelism_degrees=(1, 16, 256),
        interconnect_nodes=(28, 45),
    )
    return explore(base, large_bank_layer(), space)


def test_secondary_never_worsens_primary(points):
    plain = optimal(points, "accuracy")
    refined = optimal_with_secondary(points, "accuracy", "energy")
    assert refined.error_rate <= plain.error_rate + 1e-12


def test_secondary_improves_among_ties(points):
    """Among designs tied on accuracy (digital modules do not change
    crossbar accuracy), the secondary target picks the cheapest."""
    refined = optimal_with_secondary(
        points, "accuracy", "energy", tolerance=0.0
    )
    best_error = optimal(points, "accuracy").error_rate
    tied = [p for p in points if p.error_rate <= best_error + 1e-12]
    assert refined.energy == min(p.energy for p in tied)
    assert len(tied) > 1  # parallelism degree varies at fixed accuracy


def test_tolerance_widens_the_band(points):
    tight = optimal_with_secondary(points, "area", "latency", tolerance=0.0)
    loose = optimal_with_secondary(points, "area", "latency", tolerance=0.5)
    assert loose.latency <= tight.latency
    best_area = optimal(points, "area").area
    assert loose.area <= best_area * 1.5 + 1e-12


def test_negative_tolerance_rejected(points):
    with pytest.raises(ExplorationError):
        optimal_with_secondary(points, "area", "energy", tolerance=-0.1)


def test_empty_points_rejected():
    with pytest.raises(ExplorationError):
        optimal_with_secondary([], "area", "energy")
