"""Write-verify programming model."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.programming import (
    expected_pulses_per_cell,
    programming_cost,
    reloads_supported,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import validation_mlp
from repro.tech import get_memristor_model


@pytest.fixture
def accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return Accelerator(config, validation_mlp())


class TestPulseModel:
    def test_ideal_device_needs_one_pulse(self):
        device = get_memristor_model("RRAM")  # sigma = 0 by default
        assert expected_pulses_per_cell(device) == 1.0

    def test_pulses_grow_with_variation(self):
        device = get_memristor_model("RRAM")
        counts = [
            expected_pulses_per_cell(device.with_sigma(sigma))
            for sigma in (0.01, 0.05, 0.1, 0.3)
        ]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_pulses_grow_with_device_precision(self):
        """More levels -> tighter tolerance -> more verify loops."""
        coarse = get_memristor_model("RRAM-4BIT").with_sigma(0.05)
        fine = get_memristor_model("RRAM").with_sigma(0.05)  # 7-bit
        assert expected_pulses_per_cell(fine) > (
            expected_pulses_per_cell(coarse)
        )

    def test_tight_target_needs_more_pulses(self):
        device = get_memristor_model("RRAM").with_sigma(0.05)
        loose = expected_pulses_per_cell(device, target_fraction=1.0)
        tight = expected_pulses_per_cell(device, target_fraction=0.25)
        assert tight > loose

    def test_invalid_target_fraction(self):
        device = get_memristor_model("RRAM")
        with pytest.raises(ConfigError):
            expected_pulses_per_cell(device, target_fraction=0.0)


class TestProgrammingCost:
    def test_zero_sigma_matches_single_pass_write_plus_verify(
        self, accelerator
    ):
        cost = programming_cost(accelerator)
        assert cost.pulses_per_cell == 1.0
        write_energy = accelerator.write_performance().dynamic_energy
        # Verify reads add on top of the raw write energy.
        assert cost.energy > write_energy

    def test_variation_inflates_cost(self):
        config = SimConfig(crossbar_size=128, cmos_tech=45,
                           interconnect_tech=45)
        clean = Accelerator(config, validation_mlp())
        noisy = Accelerator(
            config.replace(device_sigma=0.1), validation_mlp()
        )
        clean_cost = programming_cost(clean)
        noisy_cost = programming_cost(noisy)
        assert noisy_cost.pulses_per_cell > clean_cost.pulses_per_cell
        assert noisy_cost.energy > clean_cost.energy
        assert noisy_cost.latency > clean_cost.latency

    def test_endurance_accounting(self, accelerator):
        cost = programming_cost(accelerator, write_endurance=1e9)
        assert cost.endurance_consumed == pytest.approx(1e-9)
        assert reloads_supported(accelerator) == pytest.approx(1e9)

    def test_invalid_endurance(self, accelerator):
        with pytest.raises(ConfigError):
            programming_cost(accelerator, write_endurance=0)
