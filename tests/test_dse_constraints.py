"""Constraint sets for design-space exploration."""

import pytest

from repro.config import SimConfig
from repro.dse.constraints import ConstraintSet
from repro.dse.explorer import explore
from repro.dse.space import DesignSpace
from repro.errors import ExplorationError
from repro.nn.networks import mlp


@pytest.fixture(scope="module")
def points():
    base = SimConfig(cmos_tech=45, weight_bits=4)
    space = DesignSpace(
        crossbar_sizes=(64, 128, 256),
        parallelism_degrees=(1, 64),
        interconnect_nodes=(28, 45),
    )
    return explore(base, mlp([512, 256]), space)


class TestValidation:
    def test_non_positive_ceilings_rejected(self):
        with pytest.raises(ExplorationError):
            ConstraintSet(max_area=0)
        with pytest.raises(ExplorationError):
            ConstraintSet(max_error_rate=-0.1)

    def test_empty_set_accepts_everything(self, points):
        constraints = ConstraintSet()
        assert constraints.filter(points) == list(points)
        assert constraints.tightest_constraint(points) is None


class TestFiltering:
    def test_error_constraint_matches_explorer_bound(self, points):
        constraints = ConstraintSet(max_error_rate=0.05)
        kept = constraints.filter(points)
        assert kept
        assert all(p.error_rate <= 0.05 for p in kept)
        assert len(kept) < len(points)

    def test_conjunction_of_constraints(self, points):
        area_median = sorted(p.area for p in points)[len(points) // 2]
        constraints = ConstraintSet(
            max_area=area_median, max_error_rate=0.05
        )
        kept = constraints.filter(points)
        for p in kept:
            assert p.area <= area_median
            assert p.error_rate <= 0.05

    def test_violations_report_overshoot(self, points):
        worst_area = max(p.area for p in points)
        tight = ConstraintSet(max_area=worst_area / 2)
        violator = max(points, key=lambda p: p.area)
        violations = tight.violations(violator)
        assert "max_area" in violations
        assert violations["max_area"] == pytest.approx(1.0)  # 2x over

    def test_satisfied_by(self, points):
        generous = ConstraintSet(max_area=1.0)  # 1 m^2
        assert all(generous.satisfied_by(p) for p in points)


class TestDiagnostics:
    def test_tightest_constraint_identified(self, points):
        tiny_area = min(p.area for p in points) * 0.5
        constraints = ConstraintSet(max_area=tiny_area, max_power=1e6)
        assert constraints.tightest_constraint(points) == "max_area"

    def test_infeasible_space_detected(self, points):
        impossible = ConstraintSet(max_latency=1e-15)
        assert impossible.filter(points) == []
        assert impossible.tightest_constraint(points) == "max_latency"
