"""Array-side circuit modules: crossbar, decoders, DAC, ADC, column mux."""

import pytest

from repro.circuits.adc import AdcModule, available_adc_designs, get_adc_design
from repro.circuits.crossbar import (
    DEFAULT_LAYOUT_COEFFICIENT,
    CrossbarModule,
)
from repro.circuits.dac import DacModule
from repro.circuits.decoder import DecoderModule
from repro.circuits.mux import ColumnMuxModule
from repro.errors import TechnologyError
from repro.tech import get_cmos_node, get_interconnect_node, get_memristor_model
from repro.tech.memristor import CellType


@pytest.fixture
def cmos():
    return get_cmos_node(45)


@pytest.fixture
def device():
    return get_memristor_model("RRAM")


@pytest.fixture
def wire():
    return get_interconnect_node(45)


def make_crossbar(device, wire, rows=128, cols=128, **kwargs):
    return CrossbarModule(
        device, CellType.ONE_T_ONE_R, rows, cols, wire, **kwargs
    )


class TestCrossbar:
    def test_area_matches_eq7_with_layout_coefficient(self, device, wire):
        xbar = make_crossbar(device, wire, 32, 32)
        cells = 32 * 32 * device.cell_area(CellType.ONE_T_ONE_R)
        assert xbar.area == pytest.approx(cells * DEFAULT_LAYOUT_COEFFICIENT)

    def test_layout_coefficient_reproduces_fig6_ratio(self):
        # 3420 um^2 measured vs 2251 um^2 estimated (Fig. 6).
        assert DEFAULT_LAYOUT_COEFFICIENT == pytest.approx(3420 / 2251)

    def test_compute_power_uses_harmonic_mean(self, device, wire):
        xbar = make_crossbar(device, wire, 128, 128)
        v_avg = device.read_voltage / 2
        expected = 128 * 128 * v_avg**2 / device.harmonic_mean_resistance
        assert xbar.compute_power == pytest.approx(expected)

    def test_compute_power_scales_with_active_region(self, device, wire):
        full = make_crossbar(device, wire, 128, 128)
        partial = make_crossbar(
            device, wire, 128, 128, active_rows=64, active_cols=32
        )
        assert partial.compute_power == pytest.approx(full.compute_power / 8)
        assert partial.area == full.area  # area covers the full array

    def test_read_power_much_smaller_than_compute(self, device, wire):
        xbar = make_crossbar(device, wire, 128, 128)
        assert xbar.read_power < xbar.compute_power / 1000

    def test_settle_time_grows_with_array(self, device, wire):
        small = make_crossbar(device, wire, 16, 16)
        large = make_crossbar(device, wire, 512, 512)
        assert large.settle_time > small.settle_time

    def test_leakage_zero_for_cross_point(self, device, wire, cmos):
        zero = CrossbarModule(
            device, CellType.CROSS_POINT, 64, 64, wire,
            cmos_leakage_per_gate=cmos.leakage_per_gate,
        )
        some = CrossbarModule(
            device, CellType.ONE_T_ONE_R, 64, 64, wire,
            cmos_leakage_per_gate=cmos.leakage_per_gate,
        )
        assert zero.leakage_power == 0.0
        assert some.leakage_power > 0.0

    def test_write_performance_scales_with_cells(self, device, wire):
        xbar = make_crossbar(device, wire, 64, 64)
        one = xbar.write_performance(cells=1)
        many = xbar.write_performance(cells=100)
        assert many.dynamic_energy == pytest.approx(100 * one.dynamic_energy)
        assert many.latency == pytest.approx(100 * one.latency)

    def test_write_defaults_to_active_region(self, device, wire):
        xbar = make_crossbar(device, wire, 64, 64, active_rows=8,
                             active_cols=8)
        assert xbar.write_performance().latency == pytest.approx(
            xbar.write_performance(cells=64).latency
        )

    def test_invalid_dimensions_raise(self, device, wire):
        with pytest.raises(ValueError):
            make_crossbar(device, wire, 0, 10)
        with pytest.raises(ValueError):
            make_crossbar(device, wire, 8, 8, active_rows=9)


class TestDecoder:
    def test_computation_oriented_adds_nor_per_line(self, cmos):
        memory = DecoderModule(cmos, 128, computation_oriented=False)
        compute = DecoderModule(cmos, 128, computation_oriented=True)
        assert compute.gate_count() == pytest.approx(
            memory.gate_count() + 128 * 1.0
        )
        assert compute.fo4_depth() > memory.fo4_depth()

    def test_address_bits(self, cmos):
        assert DecoderModule(cmos, 128).address_bits == 7
        assert DecoderModule(cmos, 1).address_bits == 1

    def test_performance_scales_with_lines(self, cmos):
        small = DecoderModule(cmos, 16).performance()
        large = DecoderModule(cmos, 256).performance()
        assert large.area > small.area
        assert large.dynamic_energy > small.dynamic_energy

    def test_zero_lines_rejected(self, cmos):
        with pytest.raises(ValueError):
            DecoderModule(cmos, 0)


class TestDac:
    def test_energy_grows_with_bits(self, cmos):
        e4 = DacModule(cmos, 4).performance().dynamic_energy
        e8 = DacModule(cmos, 8).performance().dynamic_energy
        assert e8 > e4

    def test_latency_is_conversion_time(self, cmos):
        dac = DacModule(cmos, 8, conversion_time=7e-9)
        assert dac.performance().latency == pytest.approx(7e-9)

    def test_invalid_parameters(self, cmos):
        with pytest.raises(ValueError):
            DacModule(cmos, 0)
        with pytest.raises(ValueError):
            DacModule(cmos, 8, conversion_time=0)


class TestAdc:
    def test_energy_follows_walden_fom(self, cmos):
        adc = AdcModule(cmos, bits=8, fom=50e-15)
        assert adc.conversion_energy() == pytest.approx(50e-15 * 256)

    def test_default_fom_scales_with_node(self):
        coarse = AdcModule(get_cmos_node(90), bits=8)
        fine = AdcModule(get_cmos_node(45), bits=8)
        assert fine.conversion_energy() < coarse.conversion_energy()

    def test_latency_from_frequency(self, cmos):
        adc = AdcModule(cmos, bits=8, frequency=50e6)
        assert adc.performance().latency == pytest.approx(20e-9)

    def test_overrides_win(self, cmos):
        adc = AdcModule(
            cmos, bits=8, area_override=1e-9, energy_override=2e-12
        )
        perf = adc.performance()
        assert perf.area == 1e-9
        assert perf.dynamic_energy == 2e-12

    def test_design_library(self, cmos):
        assert "SA-50MHZ" in available_adc_designs()
        design = get_adc_design("sar-1.2gs-32nm")
        module = design.build(get_cmos_node(32))
        assert module.frequency == pytest.approx(1.2e9)
        # Published point: 3.1 mW at 1.2 GS/s.
        assert module.conversion_energy() == pytest.approx(3.1e-3 / 1.2e9)

    def test_unknown_design_raises(self):
        with pytest.raises(TechnologyError):
            get_adc_design("FLASH-ADC")


class TestColumnMux:
    def test_cycles_cover_all_columns(self, cmos):
        mux = ColumnMuxModule(cmos, columns=100, read_circuits=8)
        assert mux.cycles == 13  # ceil(100 / 8)
        assert mux.cycles * 8 >= 100

    def test_all_parallel_needs_no_counter(self, cmos):
        parallel = ColumnMuxModule(cmos, columns=64, read_circuits=64)
        shared = ColumnMuxModule(cmos, columns=64, read_circuits=8)
        assert parallel.cycles == 1
        assert parallel.gate_count() < shared.gate_count()

    def test_more_read_circuits_than_columns_rejected(self, cmos):
        with pytest.raises(ValueError):
            ColumnMuxModule(cmos, columns=8, read_circuits=16)


class TestAdcDesignLibrary:
    def test_all_survey_points_build(self, cmos):
        for name in available_adc_designs():
            module = get_adc_design(name).build(cmos)
            perf = module.performance()
            assert perf.area > 0
            assert perf.dynamic_energy > 0

    def test_flash_is_fast_but_hungry(self, cmos):
        flash = get_adc_design("FLASH-4B-2GS").build(cmos)
        sar = get_adc_design("SAR-8B-100MS").build(cmos)
        assert flash.conversion_time < sar.conversion_time
        # Energy per *step* (level) is far worse for flash.
        assert flash.conversion_energy() / flash.levels > (
            sar.conversion_energy() / sar.levels
        )

    def test_low_power_sa_point(self, cmos):
        sa = get_adc_design("SA-10MHZ").build(cmos)
        reference = AdcModule(cmos, bits=8)
        assert sa.conversion_energy() < reference.conversion_energy()
