"""ProgressTracker ETA estimation and histogram quantile support."""

import pytest

import repro.obs as obs
from repro.obs import trace
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.progress import ProgressTracker


@pytest.fixture(autouse=True)
def _clean_obs():
    trace.disable()
    obs.REGISTRY.reset()
    yield
    trace.disable()
    obs.REGISTRY.reset()


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestProgressTracker:
    def test_initial_state_has_no_estimate(self):
        tracker = ProgressTracker(total=10, clock=_FakeClock())
        assert tracker.done == 0
        assert tracker.total == 10
        assert tracker.throughput is None
        assert tracker.eta_seconds() is None

    def test_eta_finite_after_first_chunk(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=10, clock=clock)
        clock.advance(2.0)
        tracker.update(2, 10)
        eta = tracker.eta_seconds()
        assert tracker.throughput == pytest.approx(1.0)
        assert eta is not None and 0.0 < eta < float("inf")

    def test_monotone_clamp_ignores_backwards_updates(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=10, clock=clock)
        clock.advance(1.0)
        tracker.update(5, 10)
        clock.advance(1.0)
        tracker.update(3, 10)  # stale report: ignored
        assert tracker.done == 5

    def test_eta_zero_when_complete(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=4, clock=clock)
        clock.advance(1.0)
        tracker.update(4, 4)
        assert tracker.eta_seconds() == 0.0

    def test_eta_shrinks_as_work_completes(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=100, clock=clock)
        clock.advance(1.0)
        tracker.update(10, 100)
        first = tracker.eta_seconds()
        clock.advance(1.0)
        tracker.update(50, 100)
        second = tracker.eta_seconds()
        assert second < first

    def test_snapshot_keys(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=8, clock=clock)
        clock.advance(0.5)
        tracker.update(2, 8)
        snap = tracker.snapshot()
        assert set(snap) == {
            "done", "total", "elapsed_seconds", "throughput",
            "eta_seconds",
        }
        assert snap["done"] == 2
        assert snap["total"] == 8
        assert snap["elapsed_seconds"] == pytest.approx(0.5)

    def test_total_can_grow_mid_run(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=4, clock=clock)
        clock.advance(1.0)
        tracker.update(2, 6)
        assert tracker.total == 6

    def test_mirrors_chunk_latency_into_stage_histogram(self):
        obs.enable()
        clock = _FakeClock()
        tracker = ProgressTracker(total=4, clock=clock)
        clock.advance(1.0)
        tracker.update(2, 4)
        hist = obs.REGISTRY.histogram("repro_runtime_stage_seconds")
        assert hist.snapshot(stage="progress-chunk")["count"] == 1


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # rank 2.0 of 4 lands in the (1, 2] bucket holding two samples.
        assert h.quantile(0.5) == pytest.approx(1.5)

    def test_inf_bucket_clamps_to_largest_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_empty_returns_none(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.quantile(0.5) is None

    def test_out_of_range_rejected(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_per_labelset(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5, kind="a")
        h.observe(3.0, kind="b")
        assert h.quantile(0.5, kind="a") <= 1.0
        assert h.quantile(0.5, kind="b") > 2.0


class TestBatchSizeBuckets:
    def test_buckets_are_powers_of_two(self):
        """The batch-size histogram counts batch *sizes*, so its
        buckets must stay pinned to powers of two — not latencies."""
        from repro.spice.solver import _BATCH_SIZE_BUCKETS

        assert list(_BATCH_SIZE_BUCKETS) == [
            2 ** i for i in range(len(_BATCH_SIZE_BUCKETS))
        ]
        assert _BATCH_SIZE_BUCKETS[0] == 1

    def test_registry_rejects_conflicting_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("repro_solver_batch_size", buckets=(1, 2, 4))
        with pytest.raises(ValueError):
            registry.histogram(
                "repro_solver_batch_size", buckets=(0.1, 1.0)
            )

    def test_registry_access_without_buckets_is_not_a_conflict(self):
        registry = MetricsRegistry()
        created = registry.histogram("h", buckets=(1, 2, 4))
        fetched = registry.histogram("h")
        assert fetched is created
        assert fetched.bounds == [1.0, 2.0, 4.0]


class TestTrackerReset:
    """reset() is what lets one tracker serve many stage attempts."""

    def test_reset_clears_count_total_and_estimators(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=10, clock=clock)
        clock.advance(1.0)
        tracker.update(5, 10)
        assert tracker.throughput is not None
        tracker.reset(4)
        assert tracker.done == 0
        assert tracker.total == 4
        assert tracker.throughput is None
        assert tracker.eta_seconds() is None
        assert tracker.elapsed_seconds() == 0.0

    def test_restarted_attempt_is_not_clamped(self):
        # Without reset, a restarted stage re-reporting from done=1
        # would be swallowed by the monotone clamp (done <= self.done)
        # until it overtook the first attempt — the frozen-ETA bug.
        clock = _FakeClock()
        tracker = ProgressTracker(total=10, clock=clock)
        clock.advance(1.0)
        tracker.update(8, 10)
        tracker.reset(10)
        clock.advance(2.0)
        tracker.update(1, 10)
        assert tracker.done == 1
        assert tracker.throughput == pytest.approx(0.5)

    def test_reset_discards_stale_latency_history(self):
        clock = _FakeClock()
        tracker = ProgressTracker(total=2, clock=clock)
        clock.advance(100.0)
        tracker.update(1, 2)  # pathological 100 s/job sample
        tracker.reset(2)
        clock.advance(1.0)
        tracker.update(1, 2)
        # ETA reflects only the fresh ~1 s/job attempt (modulo bucket
        # interpolation), not the stale 100 s/job median kept before
        # the reset.
        assert tracker.eta_seconds() < 5.0

    def test_constructor_and_reset_agree(self):
        clock = _FakeClock()
        fresh = ProgressTracker(total=7, clock=clock)
        recycled = ProgressTracker(total=99, clock=clock)
        recycled.update(3, 99)
        recycled.reset(7)
        assert recycled.snapshot() == fresh.snapshot()
