"""Configuration auto-completion."""

import pytest

from repro.config import SimConfig
from repro.dse.autocomplete import FREE_AXES, suggest_designs
from repro.errors import ExplorationError
from repro.nn.networks import mlp


@pytest.fixture(scope="module")
def network():
    return mlp([512, 256], name="autocomplete-demo")


@pytest.fixture(scope="module")
def base():
    return SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)


@pytest.fixture(scope="module")
def suggestions(base, network):
    return suggest_designs(
        base, network,
        candidates={
            "crossbar_size": (64, 128, 256),
            "parallelism_degree": (1, 64),
            "interconnect_tech": (28, 45),
        },
    )


class TestSuggestions:
    def test_all_four_targets_completed(self, suggestions):
        assert set(suggestions) == {"area", "energy", "latency",
                                    "accuracy"}

    def test_configs_are_fully_specified_and_valid(self, suggestions,
                                                   base):
        for completed in suggestions.values():
            config = completed.config
            assert config.crossbar_size in (64, 128, 256)
            assert config.cmos_tech == base.cmos_tech  # pinned field
            assert config.weight_bits == base.weight_bits

    def test_suggested_config_reproduces_the_point(self, suggestions,
                                                   network):
        from repro.arch.accelerator import Accelerator

        completed = suggestions["energy"]
        summary = Accelerator(completed.config, network).summary()
        assert summary.energy_per_sample == pytest.approx(
            completed.point.summary.energy_per_sample
        )

    def test_each_target_is_optimal_for_its_metric(self, suggestions):
        assert suggestions["area"].point.area <= (
            suggestions["energy"].point.area
        ) or suggestions["area"].point.area <= (
            suggestions["latency"].point.area
        )


class TestPinnedFields:
    def test_pinned_axis_never_changes(self, base, network):
        suggestions = suggest_designs(
            base.replace(crossbar_size=128), network,
            free=("parallelism_degree",),
            candidates={"parallelism_degree": (1, 16, 128)},
        )
        for completed in suggestions.values():
            assert completed.config.crossbar_size == 128
            assert completed.config.interconnect_tech == (
                base.interconnect_tech
            )


class TestValidation:
    def test_no_free_fields_rejected(self, base, network):
        with pytest.raises(ExplorationError):
            suggest_designs(base, network, free=())

    def test_unknown_field_rejected(self, base, network):
        with pytest.raises(ExplorationError, match="cannot sweep"):
            suggest_designs(base, network, free=("cmos_tech",))

    def test_infeasible_constraint_raises(self, base, network):
        with pytest.raises(ExplorationError, match="no completion"):
            suggest_designs(
                base, network,
                candidates={"crossbar_size": (1024,)},
                free=("crossbar_size",),
                max_error_rate=1e-9,
            )

    def test_free_axes_registry_is_sane(self):
        assert set(FREE_AXES) == {
            "crossbar_size", "parallelism_degree", "interconnect_tech",
        }
