"""Fault-mask construction, sampling determinism, and weight corruption."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults.models import (
    FAULT_MODES,
    FaultMask,
    apply_mask_to_weights,
    sample_fault_mask,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestFaultMask:
    def test_empty_mask_has_no_faults(self):
        mask = FaultMask.empty(4, 6)
        assert mask.is_empty
        assert mask.fault_count == 0
        assert mask.cell_fault_count == 0
        assert mask.cell_fault_fraction == 0.0
        assert not mask.has_line_faults

    def test_cell_fault_fraction(self):
        stuck = np.zeros((4, 4), dtype=bool)
        stuck[0, 0] = stuck[1, 2] = True
        mask = FaultMask(rows=4, cols=4, stuck_low=stuck)
        assert mask.cell_fault_count == 2
        assert mask.cell_fault_fraction == pytest.approx(2 / 16)

    def test_overlapping_cell_faults_rejected(self):
        both = np.zeros((3, 3), dtype=bool)
        both[1, 1] = True
        with pytest.raises(ConfigError):
            FaultMask(rows=3, cols=3, stuck_low=both, stuck_high=both)
        with pytest.raises(ConfigError):
            FaultMask(rows=3, cols=3, stuck_low=both, open_cells=both)

    def test_open_and_short_same_line_rejected(self):
        with pytest.raises(ConfigError):
            FaultMask(rows=3, cols=3, open_wordlines=(1,),
                      short_wordlines=(1,))

    def test_line_indices_validated(self):
        with pytest.raises(ConfigError):
            FaultMask(rows=3, cols=3, open_wordlines=(3,))
        with pytest.raises(ConfigError):
            FaultMask(rows=3, cols=3, open_bitlines=(-1,))

    def test_drift_must_be_positive_finite(self):
        bad = np.ones((2, 2))
        bad[0, 0] = 0.0
        with pytest.raises(ConfigError):
            FaultMask(rows=2, cols=2, drift=bad)
        bad[0, 0] = np.inf
        with pytest.raises(ConfigError):
            FaultMask(rows=2, cols=2, drift=bad)

    def test_masks_are_frozen(self):
        stuck = np.zeros((2, 2), dtype=bool)
        stuck[0, 0] = True
        mask = FaultMask(rows=2, cols=2, stuck_low=stuck)
        with pytest.raises(ValueError):
            mask.stuck_low[0, 1] = True


class TestApplyToResistances:
    def test_empty_mask_is_identity(self):
        mask = FaultMask.empty(3, 3)
        programmed = np.full((3, 3), 5e4)
        out = mask.apply_to_resistances(programmed, 1e3, 1e6)
        np.testing.assert_array_equal(out, programmed)
        assert out is not programmed  # a defensive copy

    def test_stuck_cells_pin_to_window_edges(self):
        low = np.zeros((2, 2), dtype=bool)
        high = np.zeros((2, 2), dtype=bool)
        low[0, 0] = True
        high[1, 1] = True
        mask = FaultMask(rows=2, cols=2, stuck_low=low, stuck_high=high)
        out = mask.apply_to_resistances(np.full((2, 2), 5e4), 1e3, 1e6)
        assert out[0, 0] == 1e3    # stuck-at-ON -> R_min
        assert out[1, 1] == 1e6    # stuck-at-OFF -> R_max
        assert out[0, 1] == 5e4

    def test_drift_multiplies_before_stuck_pins(self):
        low = np.zeros((2, 2), dtype=bool)
        low[0, 0] = True
        drift = np.full((2, 2), 2.0)
        mask = FaultMask(rows=2, cols=2, stuck_low=low, drift=drift)
        out = mask.apply_to_resistances(np.full((2, 2), 5e4), 1e3, 1e6)
        assert out[0, 0] == 1e3       # stuck pin overrides drift
        assert out[0, 1] == 1e5       # drifted

    def test_shape_mismatch_rejected(self):
        mask = FaultMask.empty(2, 2)
        with pytest.raises(ConfigError):
            mask.apply_to_resistances(np.ones((3, 3)), 1.0, 2.0)


class TestDictRoundTrip:
    def test_round_trip_preserves_everything(self):
        rng = _rng(5)
        mask = sample_fault_mask(6, 5, 0.3, rng, mode="stuck_mixed")
        clone = FaultMask.from_dict(mask.to_dict())
        np.testing.assert_array_equal(mask.stuck_low, clone.stuck_low)
        np.testing.assert_array_equal(mask.stuck_high, clone.stuck_high)
        assert mask.fault_count == clone.fault_count

    def test_round_trip_lines_and_drift(self):
        drift = np.exp(_rng(1).normal(0, 0.1, size=(3, 4)))
        mask = FaultMask(
            rows=3, cols=4,
            open_wordlines=(1,), short_bitlines=(0, 2), drift=drift,
        )
        clone = FaultMask.from_dict(mask.to_dict())
        assert clone.open_wordlines == (1,)
        assert clone.short_bitlines == (0, 2)
        np.testing.assert_allclose(clone.drift, drift)

    def test_dict_is_canonicalizable(self):
        from repro.runtime.jobs import content_key
        mask = sample_fault_mask(4, 4, 0.25, _rng(2), mode="open_cell")
        key_a = content_key(mask.to_dict())
        key_b = content_key(FaultMask.from_dict(mask.to_dict()).to_dict())
        assert key_a == key_b


class TestSampling:
    @pytest.mark.parametrize("mode", FAULT_MODES)
    def test_equal_seeds_give_equal_masks(self, mode):
        a = sample_fault_mask(8, 8, 0.2, _rng(42), mode=mode)
        b = sample_fault_mask(8, 8, 0.2, _rng(42), mode=mode)
        assert a.to_dict() == b.to_dict()

    def test_zero_rate_is_empty(self):
        for mode in FAULT_MODES:
            mask = sample_fault_mask(6, 6, 0.0, _rng(0), mode=mode)
            assert mask.fault_count == 0

    def test_rate_scales_fault_count(self):
        sparse = sample_fault_mask(32, 32, 0.02, _rng(1))
        dense = sample_fault_mask(32, 32, 0.4, _rng(1))
        assert dense.cell_fault_count > sparse.cell_fault_count

    def test_bad_mode_and_rate_rejected(self):
        with pytest.raises(ConfigError):
            sample_fault_mask(4, 4, 0.1, _rng(0), mode="gamma_ray")
        with pytest.raises(ConfigError):
            sample_fault_mask(4, 4, 1.5, _rng(0), mode="stuck_low")

    def test_stuck_mixed_splits_between_on_and_off(self):
        mask = sample_fault_mask(32, 32, 0.5, _rng(3), mode="stuck_mixed")
        assert mask.stuck_low.sum() > 0
        assert mask.stuck_high.sum() > 0
        assert not np.any(mask.stuck_low & mask.stuck_high)


class TestApplyToWeights:
    def test_stuck_and_open_semantics(self):
        weights = np.array([[1.0, -2.0], [3.0, 0.5]])
        low = np.zeros((2, 2), dtype=bool)
        high = np.zeros((2, 2), dtype=bool)
        opened = np.zeros((2, 2), dtype=bool)
        low[0, 0] = True      # -> max weight
        high[0, 1] = True     # -> min weight
        opened[1, 0] = True   # -> 0
        mask = FaultMask(rows=2, cols=2, stuck_low=low, stuck_high=high,
                         open_cells=opened)
        out = apply_mask_to_weights(weights, mask)
        assert out[0, 0] == 3.0
        assert out[0, 1] == -2.0
        assert out[1, 0] == 0.0
        assert out[1, 1] == 0.5

    def test_line_faults_rejected(self):
        mask = FaultMask(rows=2, cols=2, open_wordlines=(0,))
        with pytest.raises(ConfigError):
            apply_mask_to_weights(np.ones((2, 2)), mask)

    def test_drift_divides(self):
        drift = np.full((2, 2), 2.0)
        mask = FaultMask(rows=2, cols=2, drift=drift)
        out = apply_mask_to_weights(np.full((2, 2), 1.0), mask)
        np.testing.assert_allclose(out, 0.5)
