"""Stress and edge-case scenarios across the stack."""

import numpy as np
import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.nn.layers import FullyConnectedLayer
from repro.nn.networks import mlp, vgg16


class TestExtremeShapes:
    def test_vgg16_on_tiny_crossbars(self):
        """The full 138M-parameter network on size-32 crossbars builds
        quickly thanks to the shape-grouped mapping (O(1) per bank)."""
        config = SimConfig(crossbar_size=32, cmos_tech=45,
                           interconnect_tech=45)
        accelerator = Accelerator(config, vgg16())
        assert accelerator.total_units > 100_000
        summary = accelerator.summary()
        assert summary.area > 0

    def test_huge_crossbar_tiny_layer(self):
        config = SimConfig(crossbar_size=1024)
        accelerator = Accelerator(config, mlp([4, 4], name="tiny"))
        summary = accelerator.summary()
        assert accelerator.total_units == 1
        assert summary.worst_error_rate < 0.5

    def test_single_neuron_layer(self):
        config = SimConfig(crossbar_size=128)
        accelerator = Accelerator(config, mlp([128, 1], name="probe"))
        assert accelerator.summary().energy_per_sample > 0

    def test_very_deep_network_error_saturates(self):
        """Eq. 15's error accumulation must never exceed 100 %."""
        config = SimConfig(crossbar_size=512, interconnect_tech=18)
        accelerator = Accelerator(
            config, mlp([512] * 40, name="very-deep")
        )
        summary = accelerator.summary()
        assert summary.worst_error_rate <= 1.0
        assert summary.average_error_rate <= 1.0

    def test_one_bit_signals(self):
        """Binary-network style: 1-bit signals, unsigned 1-bit weights."""
        config = SimConfig(
            crossbar_size=64, signal_bits=1, weight_bits=1,
            weight_polarity=1,
        )
        accelerator = Accelerator(config, mlp([64, 32], name="binary"))
        assert accelerator.total_crossbars == 1
        assert accelerator.summary().area > 0


class TestNumericalRobustness:
    def test_all_config_corners_build(self):
        """Every (cell type, polarity, device) corner must simulate."""
        network = mlp([100, 50], name="corner")
        for cell_type in ("1T1R", "0T1R"):
            for polarity in (1, 2):
                for model in ("RRAM", "RRAM-4BIT", "PCM"):
                    config = SimConfig(
                        crossbar_size=64, cell_type=cell_type,
                        weight_polarity=polarity, memristor_model=model,
                        weight_bits=4,
                    )
                    summary = Accelerator(config, network).summary()
                    assert np.isfinite(summary.area)
                    assert np.isfinite(summary.worst_error_rate)

    def test_extreme_resistance_override(self):
        config = SimConfig(resistance_range=(1e7, 1e9))
        accelerator = Accelerator(config, mlp([64, 64], name="hi-r"))
        summary = accelerator.summary()
        assert np.isfinite(summary.energy_per_sample)
        assert summary.energy_per_sample > 0

    def test_functional_with_zero_weights(self, rng):
        from repro.functional import FunctionalAccelerator

        network = mlp([8, 4], name="zeros", activation="none")
        functional = FunctionalAccelerator(
            SimConfig(crossbar_size=32), network, [np.zeros((4, 8))]
        )
        out = functional.forward(rng.uniform(-1, 1, size=8))[-1]
        assert np.array_equal(out, np.zeros(4))

    def test_layer_spec_with_maximum_fanin(self):
        layer = FullyConnectedLayer(25088, 4096)  # VGG fc6
        config = SimConfig(crossbar_size=128)
        from repro.arch.mapping import LayerMapping

        mapping = LayerMapping.for_layer(layer, config)
        assert mapping.row_blocks == 196
        assert sum(
            s.rows * s.cols * s.count for s in mapping.block_shapes()
        ) == 25088 * 4096
