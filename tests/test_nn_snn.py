"""SNN rate-coding timing/energy model."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import mlp
from repro.nn.snn import SnnTimingModel


@pytest.fixture
def snn_accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    network = mlp([256, 128, 10], name="snn-demo", activation="if",
                  network_type="SNN")
    return Accelerator(config, network)


@pytest.fixture
def model(snn_accelerator):
    return SnnTimingModel(snn_accelerator)


class TestConstruction:
    def test_requires_snn_network(self):
        config = SimConfig()
        dnn = Accelerator(config, mlp([64, 32]))
        with pytest.raises(ConfigError, match="SNN"):
            SnnTimingModel(dnn)

    def test_snn_uses_integrate_fire_neuron(self, snn_accelerator):
        from repro.circuits.neuron import IntegrateFireNeuronModule

        bank = snn_accelerator.banks[0]
        assert isinstance(bank.neuron, IntegrateFireNeuronModule)


class TestTiming:
    def test_sample_cost_linear_in_window(self, model):
        one = model.sample_performance(1)
        many = model.sample_performance(64)
        assert many.dynamic_energy == pytest.approx(64 * one.dynamic_energy)
        assert many.latency == pytest.approx(64 * one.latency)
        assert many.area == one.area  # same hardware

    def test_invalid_window(self, model):
        with pytest.raises(ConfigError):
            model.sample_performance(0)


class TestRateCoding:
    def test_error_falls_as_window_grows(self, model):
        points = model.sweep(windows=(8, 32, 128))
        errors = [p.rate_coding_error for p in points]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == pytest.approx(0.5 / 128)

    def test_effective_bits(self, model):
        point = model.operating_point(256)
        assert point.effective_bits == pytest.approx(8.0)

    def test_window_for_error(self, model):
        assert model.window_for_error(0.5 / 64) == 64
        assert model.window_for_error(0.49) == 2
        with pytest.raises(ConfigError):
            model.window_for_error(0.0)
        with pytest.raises(ConfigError):
            model.window_for_error(1.5)

    def test_energy_precision_tradeoff(self, model):
        """The SNN trade-off: halving the coding error doubles energy."""
        coarse = model.operating_point(32)
        fine = model.operating_point(64)
        assert fine.rate_coding_error == pytest.approx(
            coarse.rate_coding_error / 2
        )
        assert fine.energy_per_sample == pytest.approx(
            2 * coarse.energy_per_sample
        )
