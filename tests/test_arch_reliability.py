"""Retention / read-disturb / refresh lifetime model."""

import math

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.reliability import (
    max_sample_rate_for_lifetime,
    reliability_report,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import validation_mlp

YEAR = 365.0 * 24 * 3600


@pytest.fixture
def accelerator():
    config = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    return Accelerator(config, validation_mlp())


class TestReport:
    def test_idle_device_is_retention_limited(self, accelerator):
        report = reliability_report(accelerator, samples_per_second=0.0)
        assert report.retention_limited
        # Half-level budget at one level/year -> refresh every 6 months.
        assert report.refresh_interval == pytest.approx(YEAR / 2)
        assert report.refreshes_per_year == pytest.approx(2.0)

    def test_heavy_read_traffic_becomes_disturb_limited(self, accelerator):
        report = reliability_report(
            accelerator, samples_per_second=1e6,
            disturb_per_read=1e-6,
        )
        assert not report.retention_limited
        assert report.refresh_interval < YEAR / 2

    def test_refresh_costs_scale_with_frequency(self, accelerator):
        relaxed = reliability_report(accelerator, 0.0)
        stressed = reliability_report(
            accelerator, 1e6, disturb_per_read=1e-6
        )
        assert stressed.refresh_energy_per_year > (
            relaxed.refresh_energy_per_year
        )
        assert stressed.refresh_duty_cycle >= relaxed.refresh_duty_cycle

    def test_duty_cycle_bounded(self, accelerator):
        report = reliability_report(
            accelerator, 1e9, disturb_per_read=1e-3
        )
        assert 0 < report.refresh_duty_cycle <= 1.0

    def test_endurance_lifetime_positive(self, accelerator):
        report = reliability_report(accelerator, 100.0)
        # 2 refreshes/year, 1 pulse/cell, 1e9 endurance -> ~5e8 years.
        assert report.endurance_lifetime_years > 1e6

    def test_invalid_args(self, accelerator):
        with pytest.raises(ConfigError):
            reliability_report(accelerator, -1.0)
        with pytest.raises(ConfigError):
            reliability_report(accelerator, 1.0, drift_budget=0.0)
        with pytest.raises(ConfigError):
            reliability_report(accelerator, 1.0, retention_per_level=0.0)


class TestLifetimeBudget:
    def test_generous_target_allows_unbounded_rate_wo_disturb(
        self, accelerator
    ):
        rate = max_sample_rate_for_lifetime(
            accelerator, target_years=1.0, disturb_per_read=0.0
        )
        assert rate == math.inf

    def test_rate_budget_meets_the_target(self, accelerator):
        target = 10.0
        rate = max_sample_rate_for_lifetime(
            accelerator, target_years=target, disturb_per_read=1e-6,
            write_endurance=1e6,
        )
        assert rate is not None and rate > 0
        achieved = reliability_report(
            accelerator, rate, disturb_per_read=1e-6,
            write_endurance=1e6,
        )
        assert achieved.endurance_lifetime_years == pytest.approx(
            target, rel=0.01
        )

    def test_retention_floor_detected(self, accelerator):
        """A fragile device cannot reach a decade even when idle."""
        rate = max_sample_rate_for_lifetime(
            accelerator, target_years=10.0, write_endurance=10.0,
        )
        assert rate is None

    def test_invalid_target(self, accelerator):
        with pytest.raises(ConfigError):
            max_sample_rate_for_lifetime(accelerator, target_years=0.0)


class TestHardFaultRate:
    """Hard faults (stuck/open cells) tighten the refresh policy."""

    def test_default_is_fault_free(self, accelerator):
        report = reliability_report(accelerator, 0.0)
        assert report.hard_fault_rate == 0.0

    def test_faults_shrink_the_refresh_interval(self, accelerator):
        healthy = reliability_report(accelerator, 0.0)
        faulted = reliability_report(
            accelerator, 0.0, hard_fault_rate=0.1
        )
        assert faulted.hard_fault_rate == 0.1
        # Effective budget is drift_budget * (1 - rate).
        assert faulted.refresh_interval == pytest.approx(
            healthy.refresh_interval * 0.9
        )
        assert (faulted.refreshes_per_year
                > healthy.refreshes_per_year)
        assert (faulted.endurance_lifetime_years
                < healthy.endurance_lifetime_years)

    def test_mask_fraction_feeds_the_model(self, accelerator):
        import numpy as np

        from repro.faults.models import sample_fault_mask

        mask = sample_fault_mask(
            32, 32, 0.05, np.random.default_rng(0), mode="stuck_mixed"
        )
        report = reliability_report(
            accelerator, 0.0, hard_fault_rate=mask.cell_fault_fraction
        )
        assert report.hard_fault_rate == mask.cell_fault_fraction

    def test_rate_bounds_enforced(self, accelerator):
        with pytest.raises(ConfigError):
            reliability_report(accelerator, 0.0, hard_fault_rate=-0.1)
        with pytest.raises(ConfigError):
            reliability_report(accelerator, 0.0, hard_fault_rate=1.0)
