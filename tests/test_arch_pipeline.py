"""Inner-layer pipeline modelling."""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.pipeline import (
    InnerPipeline,
    PipelineStage,
    bank_inner_pipeline,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.nn.networks import validation_mlp


@pytest.fixture
def stages():
    return [
        PipelineStage("a", 10e-9, 1e-12),
        PipelineStage("b", 20e-9, 2e-12),
        PipelineStage("c", 5e-9, 0.5e-12),
    ]


class TestInnerPipeline:
    def test_cycle_time_is_slowest_stage(self, stages):
        pipe = InnerPipeline(stages)
        assert pipe.cycle_time == 20e-9
        assert pipe.depth == 3

    def test_explicit_slower_clock_allowed(self, stages):
        pipe = InnerPipeline(stages, cycle_time=100e-9)
        assert pipe.cycle_time == 100e-9

    def test_clock_faster_than_slowest_stage_rejected(self, stages):
        with pytest.raises(ConfigError):
            InnerPipeline(stages, cycle_time=15e-9)

    def test_run_latency_fill_plus_stream(self, stages):
        pipe = InnerPipeline(stages)
        assert pipe.fill_latency == pytest.approx(3 * 20e-9)
        assert pipe.run_latency(1) == pytest.approx(pipe.fill_latency)
        assert pipe.run_latency(11) == pytest.approx(
            pipe.fill_latency + 10 * 20e-9
        )

    def test_throughput(self, stages):
        assert InnerPipeline(stages).throughput() == pytest.approx(50e6)

    def test_run_energy_linear_in_tokens(self, stages):
        pipe = InnerPipeline(stages)
        assert pipe.run_energy(10) == pytest.approx(10 * 3.5e-12)

    def test_speedup_approaches_balanced_depth(self):
        balanced = [PipelineStage(str(i), 10e-9) for i in range(4)]
        pipe = InnerPipeline(balanced)
        assert pipe.speedup_over_sequential(1) == pytest.approx(1.0)
        assert pipe.speedup_over_sequential(10_000) == pytest.approx(
            4.0, rel=0.01
        )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            InnerPipeline([])

    def test_invalid_tokens(self, stages):
        pipe = InnerPipeline(stages)
        with pytest.raises(ConfigError):
            pipe.run_latency(0)
        with pytest.raises(ConfigError):
            pipe.run_energy(0)

    def test_negative_stage_rejected(self):
        with pytest.raises(ConfigError):
            PipelineStage("bad", -1.0)

    def test_run_performance_record(self, stages):
        perf = InnerPipeline(stages).run_performance(5, area=1e-6)
        assert perf.area == 1e-6
        assert perf.dynamic_energy == pytest.approx(5 * 3.5e-12)


class TestBankDecomposition:
    @pytest.fixture
    def bank(self):
        config = SimConfig(
            crossbar_size=128, cmos_tech=45, interconnect_tech=45,
            parallelism_degree=16,
        )
        return Accelerator(config, validation_mlp()).banks[0]

    def test_stage_names(self, bank):
        pipe = bank_inner_pipeline(bank)
        assert [s.name for s in pipe.stages] == [
            "input_drive", "crossbar", "read", "merge", "neuron_buffer",
        ]

    def test_energy_per_token_matches_bank_pass(self, bank):
        pipe = bank_inner_pipeline(bank)
        assert pipe.run_energy(1) == pytest.approx(
            bank.pass_performance().dynamic_energy, rel=1e-9
        )

    def test_stage_latencies_sum_to_pass_latency(self, bank):
        pipe = bank_inner_pipeline(bank)
        total = sum(stage.latency for stage in pipe.stages)
        assert total == pytest.approx(
            bank.pass_performance().latency, rel=1e-9
        )

    def test_pipelining_beats_sequential_on_streams(self, bank):
        """The read phase dominates this configuration, so the speed-up
        is modest (bounded by sum/max stage latency) but real."""
        pipe = bank_inner_pipeline(bank)
        speedup = pipe.speedup_over_sequential(10_000)
        upper_bound = sum(s.latency for s in pipe.stages) / pipe.cycle_time
        assert 1.05 < speedup <= upper_bound + 1e-9
