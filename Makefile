# Convenience targets for the MNSIM reproduction.

PYTHON ?= python

.PHONY: install test bench bench-runtime bench-spice bench-batch \
	examples results trace-demo faults-demo campaign-demo serve-demo \
	lint lint-graph lint-baseline clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-verbose:
	$(PYTHON) -m pytest tests/ -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-runtime:
	$(PYTHON) -m pytest benchmarks/test_runtime_scaling.py -v

bench-spice:
	$(PYTHON) -m pytest benchmarks/test_spice_solver_perf.py -v

bench-batch:
	$(PYTHON) -m pytest benchmarks/test_batch_eval.py -v

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

results: test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# A small traced run (explore for the worker lanes, montecarlo for the
# solver internals), rendered with the obs-report terminal view.
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro --trace demo.trace.json \
		explore mlp:128,64 --sizes 32 64 --degrees 1 --wires 45 --jobs 2
	PYTHONPATH=src $(PYTHON) -m repro obs-report demo.trace.json
	PYTHONPATH=src $(PYTHON) -m repro --trace demo-mc.trace.json \
		montecarlo --size 16 --trials 4 --jobs 2
	PYTHONPATH=src $(PYTHON) -m repro obs-report demo-mc.trace.json

# A small fault-injection sweep: stuck cells + open lines on a 16x16
# crossbar, run twice through the same cache to demonstrate the
# byte-reproducible campaign JSON and the 100%-hit replay.
faults-demo:
	PYTHONPATH=src $(PYTHON) -m repro faults \
		--modes stuck_mixed line_open --rates 0 0.02 0.05 \
		--trials 6 --seed 1 --jobs 2 \
		--cache-dir .repro-cache -o faults-demo.json
	PYTHONPATH=src $(PYTHON) -m repro faults \
		--modes stuck_mixed line_open --rates 0 0.02 0.05 \
		--trials 6 --seed 1 --jobs 2 \
		--cache-dir .repro-cache -o faults-demo-rerun.json
	cmp faults-demo.json faults-demo-rerun.json

# Declarative campaign demo (DESIGN.md S24): validate the example
# file, run it through a cache, then resume against the same cache —
# every unit stage replays from the stage cache and the two reports
# must match byte-for-byte.  The same sequence (plus a mid-flight
# kill) runs in CI as the campaign-smoke job.
campaign-demo:
	PYTHONPATH=src $(PYTHON) -m repro campaign validate \
		examples/campaigns/fault-sweep.json
	PYTHONPATH=src $(PYTHON) -m repro campaign run \
		examples/campaigns/fault-sweep.json \
		--cache-dir .repro-cache -o campaign-demo.json
	PYTHONPATH=src $(PYTHON) -m repro campaign resume \
		examples/campaigns/fault-sweep.json \
		--cache-dir .repro-cache -o campaign-demo-rerun.json
	cmp campaign-demo.json campaign-demo-rerun.json

# Boot the job server on an ephemeral port, drive one Monte-Carlo
# payload through submit -> event stream -> result with curl, verify
# the result matches the CLI byte-for-byte, then shut down.  The same
# sequence runs in CI as the service-smoke job.
serve-demo:
	@rm -f .serve-demo-port
	@PYTHONPATH=src $(PYTHON) -m repro serve --port 0 \
		--port-file .serve-demo-port --cache-dir .repro-cache & \
	SERVER=$$!; \
	trap 'kill $$SERVER 2>/dev/null' EXIT; \
	for _ in $$(seq 50); do \
		test -s .serve-demo-port && break; sleep 0.2; \
	done; \
	PORT=$$(cat .serve-demo-port); \
	echo "== server on port $$PORT"; \
	curl -fsS -X POST "http://127.0.0.1:$$PORT/jobs" \
		-H 'Content-Type: application/json' \
		-d '{"kind":"montecarlo","montecarlo":{"trials":4,"seed":7,"size":16}}' \
		-o .serve-demo-receipt.json; \
	JOB=$$($(PYTHON) -c "import json;print(json.load(open('.serve-demo-receipt.json'))['job_id'])"); \
	echo "== job $$JOB"; \
	curl -fsS "http://127.0.0.1:$$PORT/jobs/$$JOB/events"; \
	curl -fsS "http://127.0.0.1:$$PORT/jobs/$$JOB/result" \
		-o serve-demo.json; \
	PYTHONPATH=src $(PYTHON) -m repro montecarlo --trials 4 --seed 7 \
		--size 16 --cache-dir .repro-cache -o serve-demo-cli.json; \
	cmp serve-demo.json serve-demo-cli.json && \
	echo "== service result is byte-identical to the CLI"

# Project-specific static analysis (repro lint, DESIGN.md S20) plus
# generic hygiene via ruff when it is installed (pinned in pyproject;
# CI always runs it, local runs degrade gracefully without it).
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro \
		--baseline lint-baseline.json
	@command -v ruff >/dev/null 2>&1 \
		&& ruff check src \
		|| echo "ruff not installed; skipped (pip install ruff==0.5.7)"

# Project-analysis rules only (R7-R9: lock discipline, thread
# lifecycle, determinism taint) with the call-graph pass and its
# build-time figure in the summary line.
lint-graph:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro \
		--baseline lint-baseline.json --graph --select R7,R8,R9

# Regenerate lint-baseline.json from the current findings.  Newly
# grandfathered entries get a placeholder justification — replace it
# by hand; tests/test_analysis_rules.py rejects the placeholder.
lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro \
		--baseline lint-baseline.json --update-baseline

# Local artifacts only — never touches the user-global ~/.cache/repro.
clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results .repro-cache
	rm -f last_run.json *.trace.json faults-demo.json faults-demo-rerun.json
	rm -f lint-report.json serve-demo.json serve-demo-cli.json
	rm -f campaign-demo.json campaign-demo-rerun.json
	rm -f .serve-demo-port .serve-demo-receipt.json
	find . -name __pycache__ -type d -exec rm -rf {} +
