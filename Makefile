# Convenience targets for the MNSIM reproduction.

PYTHON ?= python

.PHONY: install test bench bench-runtime bench-spice examples results clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-verbose:
	$(PYTHON) -m pytest tests/ -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-runtime:
	$(PYTHON) -m pytest benchmarks/test_runtime_scaling.py -v

bench-spice:
	$(PYTHON) -m pytest benchmarks/test_spice_solver_perf.py -v

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

results: test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
