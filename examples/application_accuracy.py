#!/usr/bin/env python
"""Application-level accuracy: train, deploy, and stress a classifier.

Trains a small MLP on a synthetic clustering task (numpy SGD), deploys
the trained weights onto the crossbar substrate through the functional
simulator, and measures *classification accuracy* — the metric end
users care about — across substrate conditions: wire nodes, device
variation, and reduced weight precision.

Run:  python examples/application_accuracy.py
"""

import numpy as np

from repro import SimConfig, mlp
from repro.functional import AnalogMode, FunctionalAccelerator
from repro.nn.trainer import (
    MlpTrainer,
    classification_accuracy,
    make_cluster_dataset,
)
from repro.report import format_table


def main() -> None:
    rng = np.random.default_rng(42)
    x, y = make_cluster_dataset(
        rng, features=32, classes=6, samples_per_class=80, spread=0.35
    )
    split = 360
    x_train, y_train = x[:split], y[:split]
    x_test, y_test = x[split:], y[split:]

    network = mlp([32, 48, 6], name="cluster-classifier")
    trainer = MlpTrainer(network, rng)
    result = trainer.train(x_train, y_train, epochs=60, learning_rate=0.4)
    float_acc = classification_accuracy(trainer.forward, x_test, y_test)
    print(f"trained in {len(result.losses)} epochs; "
          f"float test accuracy: {float_acc:.1%} "
          f"(loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f})")

    scenarios = [
        ("reference (45 nm wire)", dict(interconnect_tech=45)),
        ("resistive wires (18 nm)", dict(interconnect_tech=18)),
        ("device variation 20%", dict(interconnect_tech=45,
                                      device_sigma=0.2)),
        ("4-bit weights", dict(interconnect_tech=45, weight_bits=4)),
        ("4-bit weights + 18 nm", dict(interconnect_tech=18,
                                       weight_bits=4)),
    ]

    rows = []
    for label, overrides in scenarios:
        settings = dict(crossbar_size=32, weight_bits=8, signal_bits=8)
        settings.update(overrides)
        config = SimConfig(**settings)
        functional = FunctionalAccelerator(config, network, result.weights)
        ideal = classification_accuracy(
            lambda v: functional.forward(v)[-1], x_test, y_test
        )
        noisy_rng = np.random.default_rng(7)
        noisy = classification_accuracy(
            lambda v: functional.forward(
                v, mode=AnalogMode.MODEL, rng=noisy_rng
            )[-1],
            x_test, y_test,
        )
        rows.append([
            label,
            f"{functional.banks[0].epsilon:.2%}",
            f"{ideal:.1%}",
            f"{noisy:.1%}",
        ])

    print()
    print(format_table(
        ["substrate scenario", "tile eps", "mapped (ideal)",
         "with analog error"],
        rows,
    ))
    print()
    print("Quantization and wire-induced analog error are invisible at")
    print("this task's margin (small layers fill few crossbar rows, the")
    print("benign region of the Table V U-curve); strong device variation")
    print("is what finally erodes the deployed accuracy.")


if __name__ == "__main__":
    main()
