#!/usr/bin/env python
"""Deep-CNN case study: VGG-16 on the reference design (Table VI).

Explores the same three variables as the large-bank case, but for the
full 16-layer VGG network under a relaxed 50 % error constraint with
interconnect nodes up to 90 nm, and prints the per-bank breakdown of
the pipeline.

Run:  python examples/vgg16_cnn.py
"""

import time

from repro import Accelerator, SimConfig, vgg16
from repro.dse import DesignSpace, explore, optimal_table, pentagon_factors
from repro.report import format_table
from repro.units import MJ, MM2, US


def main() -> None:
    base = SimConfig(cmos_tech=45, weight_bits=8, signal_bits=8)
    network = vgg16()
    space = DesignSpace(
        crossbar_sizes=(32, 64, 128, 256, 512),
        parallelism_degrees=(1, 4, 16, 64, 256),
        interconnect_nodes=(18, 22, 28, 36, 45, 65, 90),
    )

    start = time.perf_counter()
    points = explore(base, network, space, max_error_rate=0.50)
    print(
        f"explored {len(space)} VGG-16 designs "
        f"({len(points)} feasible) in {time.perf_counter() - start:.2f} s"
    )

    # --- Table VI ------------------------------------------------------
    best = optimal_table(points)
    rows = []
    for metric, point in best.items():
        s = point.summary
        rows.append([
            metric,
            f"{s.area / MM2:.1f}",
            f"{s.energy_per_sample / MJ:.3f}",
            f"{s.pipeline_cycle / US:.4f}",
            f"{s.worst_error_rate:.2%}",
            f"{s.power:.1f}",
            point.crossbar_size,
            point.interconnect_tech,
            point.parallelism_degree,
        ])
    print()
    print("=== Table VI: VGG-16 design-space exploration ===")
    print(format_table(
        ["target", "area mm^2", "energy mJ", "cycle us", "err", "power W",
         "xbar", "wire nm", "p"],
        rows,
    ))

    print()
    print("=== Fig. 9b: normalized performance pentagons ===")
    for (metric, _point), factors in zip(
        best.items(), pentagon_factors(list(best.values()))
    ):
        pretty = ", ".join(f"{k}={v:.3f}" for k, v in factors.items())
        print(f"{metric:9s}: {pretty}")

    # --- Per-bank pipeline breakdown of one design ----------------------
    config = base.replace(
        crossbar_size=128, interconnect_tech=45, parallelism_degree=64
    )
    accelerator = Accelerator(config, network)
    print()
    print("=== per-bank pipeline view (xbar=128, p=64, 45 nm wire) ===")
    rows = []
    for index, (bank, layer) in enumerate(
        zip(accelerator.banks, network.layers)
    ):
        passes = layer.compute_passes
        cycle = bank.pass_performance().latency
        rows.append([
            f"bank[{index:02d}]",
            layer.kind,
            f"{bank.mapping.out_features}x{bank.mapping.in_features}",
            bank.units,
            passes,
            f"{cycle / US:.4f}",
        ])
    print(format_table(
        ["bank", "kind", "weights", "units", "passes", "pass latency us"],
        rows,
    ))
    print(
        f"pipeline cycle (slowest bank): "
        f"{accelerator.pipeline_cycle_latency() / US:.4f} us"
    )


if __name__ == "__main__":
    main()
