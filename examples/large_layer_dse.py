#!/usr/bin/env python
"""Design-space exploration of a 2048x1024 layer (Tables IV/V, Fig. 9a).

Sweeps crossbar size x parallelism degree x interconnect node under a
25 % worst-case error constraint, reports the optimal design per metric
(area / energy / latency / accuracy), the crossbar-size trade-off table,
and the normalized pentagon factors.

Run:  python examples/large_layer_dse.py
"""

import time

from repro import SimConfig, large_bank_layer
from repro.dse import (
    DesignSpace,
    explore,
    optimal_table,
    pentagon_factors,
    size_tradeoff,
)
from repro.report import format_table
from repro.units import MM2, UJ, US


def main() -> None:
    base = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
    network = large_bank_layer()
    space = DesignSpace()  # the paper's grid: sizes 4..1024, p 1..256,
    #                        wires {18, 22, 28, 36, 45} nm

    start = time.perf_counter()
    points = explore(base, network, space, max_error_rate=0.25)
    elapsed = time.perf_counter() - start
    print(
        f"explored {len(space)} designs ({len(points)} feasible under the "
        f"25% error constraint) in {elapsed:.2f} s"
    )

    # --- Table IV: the optimal design per optimization target ---------
    best = optimal_table(points)
    rows = []
    for metric, point in best.items():
        s = point.summary
        rows.append([
            metric,
            f"{s.area / MM2:.3f}",
            f"{s.energy_per_sample / UJ:.3f}",
            f"{s.compute_latency / US:.4f}",
            f"{s.worst_error_rate:.2%}",
            f"{s.power:.3f}",
            point.crossbar_size,
            point.interconnect_tech,
            point.parallelism_degree,
        ])
    print()
    print("=== Table IV: design-space exploration (optimum per target) ===")
    print(format_table(
        ["target", "area mm^2", "energy uJ", "latency us", "err", "power W",
         "xbar", "wire nm", "p"],
        rows,
    ))

    # --- Fig. 9a: normalized pentagon factors --------------------------
    print()
    print("=== Fig. 9a: normalized performance pentagons ===")
    for (metric, _point), factors in zip(
        best.items(), pentagon_factors(list(best.values()))
    ):
        pretty = ", ".join(f"{k}={v:.3f}" for k, v in factors.items())
        print(f"{metric:9s}: {pretty}")

    # --- Table V: trade-off vs crossbar size ---------------------------
    print()
    print("=== Table V: error/area/energy vs crossbar size (45 nm wire) ===")
    tradeoff = size_tradeoff(
        base.replace(interconnect_tech=45, parallelism_degree=0), network
    )
    print(format_table(
        ["crossbar", "error rate", "area mm^2", "energy uJ"],
        [
            [r.crossbar_size, f"{r.error_rate:.2%}",
             f"{r.area / MM2:.2f}", f"{r.energy / UJ:.2f}"]
            for r in tradeoff
        ],
    ))


if __name__ == "__main__":
    main()
