#!/usr/bin/env python
"""Customization walkthrough (Sec. III.E): config files, module
overrides, module removal, and NVSim-style imported numbers.

Demonstrates the three customization paths of the paper's Fig. 3:

1. driving the simulator from a Table-I-style configuration file;
2. replacing a reference module with a user model (a faster ADC);
3. removing modules entirely (the DAC/ADC-free structure of [24], [30])
   and importing fixed published numbers for a new module.

Run:  python examples/custom_module.py
"""

import textwrap

from repro import (
    Accelerator,
    CustomModule,
    ModuleRegistry,
    Performance,
    SimConfig,
    mlp,
)
from repro.circuits import AdcModule, get_adc_design
from repro.report import format_table
from repro.units import MM2, UJ, US


def summarise(label, accelerator):
    s = accelerator.summary()
    return [
        label,
        f"{s.area / MM2:.4f}",
        f"{s.energy_per_sample / UJ:.4f}",
        f"{s.compute_latency / US:.4f}",
    ]


def main() -> None:
    # 1. Configuration file (Table I spellings).
    config_text = textwrap.dedent(
        """
        # accelerator level
        Interface_Number = [128, 128]
        # bank level
        Network_Type = ANN
        Crossbar_Size = 128
        # unit level
        Weight_Polarity = 2
        CMOS_Tech = 45nm
        Cell_Type = 1T1R
        Memristor_Model = RRAM
        Interconnect_Tech = 28
        Parallelism_Degree = 16
        Weight_Bits = 8
        Signal_Bits = 8
        """
    )
    config = SimConfig.from_string(config_text)
    network = mlp([512, 512, 256], name="custom-demo")

    rows = [summarise("reference design", Accelerator(config, network))]

    # 2. Swap the read circuit for a published fast SAR ADC.
    fast_adc = ModuleRegistry()
    design = get_adc_design("SAR-1.2GS-32NM")
    fast_adc.override(
        "read_circuit", lambda cmos, bits, **_kw: design.build(cmos)
    )
    rows.append(
        summarise("imported 1.2 GS/s ADC",
                  Accelerator(config, network, registry=fast_adc))
    )

    # 3. Remove the DACs (input-switched structure of refs [24]/[30]).
    dacless = ModuleRegistry()
    dacless.remove("dac")
    rows.append(
        summarise("DAC-free structure",
                  Accelerator(config, network, registry=dacless))
    )

    # 4. Import fixed published numbers for the output buffer (the
    #    NVSim-cooperation path): e.g. an SRAM buffer characterised
    #    elsewhere.
    imported = ModuleRegistry()
    imported.override_fixed(
        "output_buffer",
        Performance(
            area=0.01e-6,           # 0.01 mm^2
            dynamic_energy=5e-12,   # 5 pJ per refill
            leakage_power=1e-4,     # 0.1 mW
            latency=2e-9,           # 2 ns
        ),
    )
    rows.append(
        summarise("imported SRAM buffer",
                  Accelerator(config, network, registry=imported))
    )

    print("=== customization paths (Sec. III.E) ===")
    print(format_table(
        ["design", "area mm^2", "energy uJ", "latency us"], rows
    ))

    # CustomModule can also stand alone as a user-supplied model:
    edram = CustomModule(
        "edram-buffer",
        Performance(area=0.083e-6, dynamic_energy=2.07e-9, latency=1e-7),
    )
    print()
    print(f"standalone custom module: {edram.name} -> {edram.performance()}")


if __name__ == "__main__":
    main()
