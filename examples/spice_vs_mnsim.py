#!/usr/bin/env python
"""Circuit-level validation: speed-up and error-model fit (Tables II/III,
Fig. 5).

1. Times the internal circuit-level solver against the behavior-level
   accuracy model across crossbar sizes (the Table III speed-up).
2. Re-derives the fitted wire-term constants against the solver and
   reports the fit RMSE (the Fig. 5 fitting flow; paper bound: 0.01).
3. Exports a SPICE netlist for external cross-checking (Sec. IV.A).

Run:  python examples/spice_vs_mnsim.py
"""

import time

import numpy as np

from repro.accuracy import analog_error_rate, fit_wire_term
from repro.accuracy.interconnect import DEFAULT_SENSE_RESISTANCE
from repro.spice import CrossbarNetwork, generate_netlist
from repro.report import format_table
from repro.tech import get_interconnect_node, get_memristor_model
from repro.tech.memristor import CellType


def main() -> None:
    device = get_memristor_model("RRAM")
    pitch = device.cell_pitch(CellType.ONE_T_ONE_R)

    # --- Table III: simulation time, solver vs model -------------------
    wire_45 = get_interconnect_node(45).segment_resistance(pitch)
    rows = []
    for size in (16, 32, 64, 128):
        resistances = np.full((size, size), device.r_min)
        inputs = np.full(size, device.read_voltage)
        network = CrossbarNetwork(
            resistances, wire_45, DEFAULT_SENSE_RESISTANCE, device=device
        )
        start = time.perf_counter()
        network.solve(inputs)
        solver_time = time.perf_counter() - start

        start = time.perf_counter()
        repeats = 1000
        for _ in range(repeats):
            analog_error_rate(size, size, wire_45, device)
        model_time = (time.perf_counter() - start) / repeats

        rows.append([
            size,
            f"{solver_time:.4f}",
            f"{model_time * 1e6:.2f}",
            f"{solver_time / model_time:,.0f}x",
        ])
    print("=== Table III: circuit-level solve vs behavior-level model ===")
    print(format_table(
        ["crossbar", "solver s", "model us", "speed-up"], rows
    ))

    # --- Fig. 5: fit quality --------------------------------------------
    print()
    print("=== Fig. 5: wire-term fit against the circuit solver ===")
    segments = [
        get_interconnect_node(node).segment_resistance(pitch)
        for node in (18, 28, 45, 90)
    ]
    fit = fit_wire_term(device, segments, sizes=(8, 16, 32, 64))
    print(f"fitted kappa={fit.kappa:.4f}, beta={fit.beta:.4f}")
    print(f"fit RMSE = {fit.rmse:.5f}  (paper bound: < 0.01)")
    print(f"max |model - solver| = {fit.max_abs_residual:.5f}")
    print()
    print(format_table(
        ["wire r (ohm)", "size", "solver eps", "model eps"],
        [
            [f"{p.segment_resistance:.3f}", p.size,
             f"{p.solver_error:+.4f}", f"{p.model_error:+.4f}"]
            for p in fit.points
        ],
    ))

    # --- SPICE netlist export -------------------------------------------
    rng = np.random.default_rng(1)
    levels = rng.integers(0, device.levels, size=(8, 8))
    resistances = np.vectorize(device.resistance_of_level)(levels)
    netlist = generate_netlist(
        resistances, rng.uniform(0, 1, size=8), wire_45,
        DEFAULT_SENSE_RESISTANCE, title="MNSIM 8x8 export",
    )
    print()
    print("=== SPICE netlist export (first 12 lines) ===")
    print("\n".join(netlist.splitlines()[:12]))
    print(f"... ({len(netlist.splitlines())} lines total)")


if __name__ == "__main__":
    main()
