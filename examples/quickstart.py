#!/usr/bin/env python
"""Quickstart: simulate a small memristor-based DNN accelerator.

Builds the reference design for a 784-256-10 MLP (an MNIST-sized
classifier), prints the hierarchical performance report, the summary
metrics the paper's tables use, and the propagated computing accuracy.

Run:  python examples/quickstart.py
"""

from repro import Accelerator, SimConfig, mlp
from repro.units import MM2, MW, UJ, US, fmt_si


def main() -> None:
    # 1. Describe the design (the paper's Table I knobs).
    config = SimConfig(
        crossbar_size=128,       # cells per crossbar side
        cmos_tech=45,            # nm
        interconnect_tech=28,    # nm
        weight_bits=8,
        signal_bits=8,
        parallelism_degree=16,   # read circuits shared per crossbar
    )

    # 2. Describe the application.
    network = mlp([784, 256, 10], name="mnist-mlp")

    # 3. Build and simulate.
    accelerator = Accelerator(config, network)
    summary = accelerator.summary()

    print(f"=== {network.name} on the MNSIM reference design ===")
    print(f"banks:            {len(accelerator.banks)}")
    print(f"computation units:{accelerator.total_units:5d}")
    print(f"crossbars:        {accelerator.total_crossbars:5d}")
    print()
    print(f"area:             {summary.area / MM2:10.4f} mm^2")
    print(f"energy / sample:  {summary.energy_per_sample / UJ:10.4f} uJ")
    print(f"latency / sample: {summary.sample_latency / US:10.4f} us "
          f"(banks only: {summary.compute_latency / US:.4f} us)")
    print(f"pipeline cycle:   {summary.pipeline_cycle / US:10.4f} us")
    print(f"average power:    {summary.power / MW:10.4f} mW")
    print(f"worst error rate: {summary.worst_error_rate:10.4%}")
    print(f"relative accuracy:{summary.relative_accuracy:10.4%}")

    # 4. Drill down with the hierarchical report (Fig. 3's output view).
    print()
    print("=== hierarchical report (depth 2) ===")
    print(accelerator.report().render(max_depth=2))

    # 5. Program it through the basic instruction set (Sec. III.D).
    from repro import Controller, assemble

    trace = Controller(accelerator).run(
        assemble("WRITE\nCOMPUTE 100")
    )
    print()
    print("=== WRITE + 100 x COMPUTE ===")
    print(f"total energy:  {fmt_si(trace.total_energy, 'J')}")
    print(f"total latency: {fmt_si(trace.total_latency, 's')}")


if __name__ == "__main__":
    main()
