#!/usr/bin/env python
"""Extension models: training cost, SNN timing, inner pipelining,
sensitivity analysis, and Monte-Carlo accuracy.

The paper's conclusion lists on-chip training and inner-layer pipeline
structures as future work; this example exercises the extension models
implementing them, plus the analysis tooling layered on the accuracy
model.

Run:  python examples/advanced_models.py
"""

import numpy as np

from repro import Accelerator, SimConfig, mlp
from repro.accuracy.interconnect import analog_error_rate
from repro.accuracy.montecarlo import bound_check, run_monte_carlo
from repro.accuracy.sensitivity import sensitivity_sweep
from repro.arch.breakdown import accelerator_breakdown
from repro.arch.pipeline import bank_inner_pipeline
from repro.arch.training import TrainingCostModel
from repro.nn.snn import SnnTimingModel
from repro.report import format_table
from repro.tech import get_memristor_model
from repro.units import MJ, NS, UJ, US, fmt_si


def main() -> None:
    config = SimConfig(
        crossbar_size=128, cmos_tech=45, interconnect_tech=45,
        weight_bits=8, signal_bits=8, parallelism_degree=16,
    )

    # --- on-chip training (future work, Sec. VIII) ----------------------
    accelerator = Accelerator(config, mlp([784, 256, 10], name="mnist"))
    trainer = TrainingCostModel(accelerator, update_sparsity=0.1)
    cost = trainer.evaluate(samples_per_epoch=60_000, batch_size=64)
    print("=== on-chip training cost (MNIST-sized MLP) ===")
    print(f"energy / update:   {fmt_si(cost.energy_per_update, 'J')}")
    print(f"energy / epoch:    {cost.energy_per_epoch / MJ:.3f} mJ")
    print(f"latency / epoch:   {cost.latency_per_epoch:.4f} s")
    print(f"endurance horizon: {cost.endurance_epochs:,.0f} epochs "
          f"(supports 100 epochs: {cost.supports_run(100)})")
    print(f"weight-load share after 1M inferences: "
          f"{trainer.inference_amortisation(1_000_000):.4%}")

    # --- SNN rate-coding trade-off --------------------------------------
    snn = Accelerator(
        config,
        mlp([784, 256, 10], name="snn", activation="if",
            network_type="SNN"),
    )
    timing = SnnTimingModel(snn)
    print()
    print("=== SNN rate-coding trade-off ===")
    rows = [
        [p.timesteps, f"{p.effective_bits:.0f}",
         f"{p.rate_coding_error:.3%}",
         f"{p.energy_per_sample / UJ:.3f}",
         f"{p.latency_per_sample / US:.2f}"]
        for p in timing.sweep(windows=(16, 64, 256))
    ]
    print(format_table(
        ["window T", "eff. bits", "coding err", "energy uJ", "latency us"],
        rows,
    ))

    # --- inner-layer pipeline (ISAAC-style future work) ------------------
    pipe = bank_inner_pipeline(accelerator.banks[0])
    print()
    print("=== inner pipeline of bank[0] ===")
    print(format_table(
        ["stage", "latency ns"],
        [[s.name, f"{s.latency / NS:.2f}"] for s in pipe.stages],
    ))
    print(f"cycle: {pipe.cycle_time / NS:.2f} ns; streaming 10k tokens is "
          f"{pipe.speedup_over_sequential(10_000):.2f}x faster than "
          f"start-to-finish")

    # --- sensitivity analysis -------------------------------------------
    device = get_memristor_model("RRAM")
    print()
    print("=== error-rate sensitivities across the U-curve ===")
    for report in sensitivity_sweep(device, (8, 64, 256), 0.25):
        pretty = ", ".join(
            f"{k}={v:+.2f}" for k, v in report.sensitivities.items()
        )
        print(f"size {report.size:4d}: eps={report.epsilon:+.4f} "
              f"dominant={report.dominant()} ({pretty})")

    # --- Monte-Carlo accuracy vs the closed-form bound -------------------
    rng = np.random.default_rng(7)
    result = run_monte_carlo(device, size=32, segment_resistance=0.25,
                             rng=rng, trials=8)
    bound = abs(analog_error_rate(32, 32, 0.25, device))
    print()
    print("=== Monte-Carlo accuracy (32x32, 45 nm wire) ===")
    print(f"mean |error| = {result.mean_abs_error:.4%}, "
          f"p99 = {result.percentile(99):.4%}, "
          f"max = {result.max_abs_error:.4%}")
    print(f"closed-form worst case = {bound:.4%}; "
          f"bound holds: {bound_check(result, bound, slack=2.0)}")

    # --- reliability: retention, disturb, refresh ------------------------
    from repro.arch.reliability import reliability_report

    life = reliability_report(accelerator, samples_per_second=1e6)
    print()
    print("=== reliability at 1M samples/s ===")
    print(f"refresh interval: {life.refresh_interval / 86400:.1f} days "
          f"({'retention' if life.retention_limited else 'disturb'}-limited)")
    print(f"refresh energy:   {life.refresh_energy_per_year:.4f} J/year, "
          f"duty cycle {life.refresh_duty_cycle:.2e}")
    print(f"endurance horizon:{life.endurance_lifetime_years:,.0f} years")

    # --- breakdown -------------------------------------------------------
    print()
    print("=== per-category breakdown ===")
    print(accelerator_breakdown(accelerator).render())


if __name__ == "__main__":
    main()
