#!/usr/bin/env python
"""Functional simulation of the JPEG autoencoder (Sec. VII.A workload).

Runs real image blocks through the *mapped* design — quantization,
polarity planes, bit slices, tiles, shift-add, adder tree, neuron — in
the three fidelity modes, and compares the observed output error
against the behavior-level accuracy model's prediction.

Run:  python examples/functional_simulation.py
"""

import time

import numpy as np

from repro import Accelerator, SimConfig, jpeg_autoencoder
from repro.functional import AnalogMode, FunctionalAccelerator
from repro.nn.workloads import image_blocks, random_weights
from repro.report import format_table


def main() -> None:
    rng = np.random.default_rng(2016)
    config = SimConfig(
        crossbar_size=64, cmos_tech=90, interconnect_tech=45,
        weight_bits=8, signal_bits=8,
    )
    network = jpeg_autoencoder()
    weights = random_weights(network, rng)

    functional = FunctionalAccelerator(config, network, weights)
    blocks = image_blocks(rng, count=20, size=8)

    # --- exactness of the mapping algebra -------------------------------
    mismatches = 0
    for block in blocks:
        ideal = functional.forward(block)[-1]
        reference = functional.reference_forward(block)[-1]
        if not np.array_equal(ideal, reference):
            mismatches += 1
    print(f"IDEAL mode vs fixed-point reference: "
          f"{len(blocks) - mismatches}/{len(blocks)} blocks bit-exact")

    # --- analog fidelity modes vs the accuracy model ---------------------
    model_errors, solver_errors = [], []
    start = time.perf_counter()
    for block in blocks:
        model_errors.append(
            functional.relative_output_error(
                block, mode=AnalogMode.MODEL, rng=rng
            )
        )
    model_time = time.perf_counter() - start

    start = time.perf_counter()
    for block in blocks[:4]:  # solver mode is the slow, exact path
        solver_errors.append(
            functional.relative_output_error(block, mode=AnalogMode.SOLVER)
        )
    solver_time = time.perf_counter() - start

    predicted = Accelerator(config, network).accuracy()
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["per-tile worst-case eps (model)",
             f"{functional.banks[0].epsilon:.4%}"],
            ["predicted worst error (propagated)",
             f"{predicted.worst_error_rate:.4%}"],
            ["observed error, MODEL mode (mean of 20)",
             f"{np.mean(model_errors):.4%}  ({model_time:.2f} s)"],
            ["observed error, SOLVER mode (mean of 4)",
             f"{np.mean(solver_errors):.4%}  ({solver_time:.2f} s)"],
        ],
    ))
    print()
    print("The solver-measured error sits inside the model band, and the")
    print("propagated worst case bounds both observations — the paper's")
    print("accuracy-validation claim, demonstrated functionally.")


if __name__ == "__main__":
    main()
