#!/usr/bin/env python
"""Simulating related work: PRIME and ISAAC (Table VII).

Both architectures are expressed as customizations of the reference
hierarchy — PRIME by reorganising the reference modules into
reconfigurable units, ISAAC by importing published module costs and a
custom 22-stage pipeline latency rule.

Run:  python examples/prime_isaac.py
"""

from repro.related import simulate_isaac, simulate_prime
from repro.report import format_table
from repro.units import MM2, UJ, US


def main() -> None:
    prime = simulate_prime()
    isaac = simulate_isaac()

    print("=== Table VII: simulation of PRIME and ISAAC ===")
    print("(the two columns are not comparable: the task scales differ)")
    print()
    print(format_table(
        ["metric", "PRIME FF-subarray", "ISAAC tile"],
        [
            ["CMOS tech", "65 nm", "32 nm"],
            ["crossbars", prime.crossbars, isaac.crossbars],
            ["area (mm^2)",
             f"{prime.area / MM2:.3f}", f"{isaac.area / MM2:.3f}"],
            ["energy per task (uJ)",
             f"{prime.energy_per_task / UJ:.3f}",
             f"{isaac.energy_per_task / UJ:.3f}"],
            ["latency (us)",
             f"{prime.latency / US:.3f}", f"{isaac.latency / US:.3f}"],
            ["accuracy",
             f"{prime.relative_accuracy:.1%}",
             f"{isaac.relative_accuracy:.1%}"],
        ],
    ))
    print()
    print("PRIME: 256x256 layer, 8-bit signed weights on 4-bit cells ->")
    print("       2 units x 2 polarities = 4 crossbars per FF-subarray.")
    print("ISAAC: 1024x768 task filling 48 tiles x 2 polarities = 96")
    print("       crossbars; latency = 22 pipeline cycles x 100 ns.")


if __name__ == "__main__":
    main()
