#!/usr/bin/env python
"""A full DSE workflow: constraints, auto-completion, export, analysis.

Walks the decision process a designer would follow:

1. auto-complete an under-specified configuration per target
   (the paper's "optimal design for each performance" behaviour);
2. apply a multi-metric constraint set and diagnose what binds;
3. refine with a secondary objective among accuracy ties;
4. check throughput bottlenecks and floorplan the winner;
5. export the full exploration to CSV/JSON for external tooling.

Run:  python examples/explore_and_export.py
"""

import tempfile
from pathlib import Path

from repro import Accelerator, SimConfig, mlp
from repro.arch.floorplan import floorplan
from repro.arch.throughput import bus_lines_for_balance, throughput_report
from repro.dse import (
    ConstraintSet,
    DesignSpace,
    explore,
    optimal_with_secondary,
    suggest_designs,
    to_csv,
    to_json,
)
from repro.report import format_table
from repro.units import MM2, UJ, US


def main() -> None:
    base = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
    network = mlp([1024, 512, 64], name="workflow-demo")

    # 1. Auto-complete the free fields per optimization target.
    suggestions = suggest_designs(
        base, network,
        candidates={
            "crossbar_size": (64, 128, 256, 512),
            "parallelism_degree": (1, 16, 64, 256),
            "interconnect_tech": (22, 28, 45),
        },
        max_error_rate=0.25,
    )
    print("=== auto-completed designs (Sec. IV.A behaviour) ===")
    print(format_table(
        ["target", "xbar", "wire", "p", "area mm^2", "energy uJ", "error"],
        [
            [
                metric,
                d.config.crossbar_size,
                d.config.interconnect_tech,
                d.config.parallelism_degree,
                f"{d.point.area / MM2:.3f}",
                f"{d.point.energy / UJ:.3f}",
                f"{d.point.error_rate:.2%}",
            ]
            for metric, d in suggestions.items()
        ],
    ))

    # 2. Full exploration under a constraint set.
    space = DesignSpace(
        crossbar_sizes=(64, 128, 256, 512),
        parallelism_degrees=(1, 16, 64, 256),
        interconnect_nodes=(22, 28, 45),
    )
    points = explore(base, network, space)
    constraints = ConstraintSet(
        max_area=20 * MM2, max_power=5.0, max_error_rate=0.10,
    )
    feasible = constraints.filter(points)
    print()
    print(f"constraints keep {len(feasible)}/{len(points)} designs "
          f"(tightest: {constraints.tightest_constraint(points)})")

    # 3. Secondary objective among accuracy ties.
    refined = optimal_with_secondary(feasible, "accuracy", "energy")
    print(f"accuracy-optimal, cheapest-energy tie-break: "
          f"xbar={refined.crossbar_size}, p={refined.parallelism_degree}, "
          f"wire={refined.interconnect_tech} nm "
          f"({refined.energy / UJ:.3f} uJ, err {refined.error_rate:.2%})")

    # 4. System checks on the winner.
    winner = Accelerator(
        base.replace(
            crossbar_size=refined.crossbar_size,
            parallelism_degree=refined.parallelism_degree,
            interconnect_tech=refined.interconnect_tech,
        ),
        network,
    )
    report = throughput_report(winner)
    plan = floorplan(winner)
    print()
    print("=== throughput & floorplan of the winner ===")
    print(report.render())
    if report.is_bus_bound:
        lines = bus_lines_for_balance(winner)
        print(f"bus-bound -> widen interfaces to {lines} lines")
    print(f"die: {plan.die_width * 1e3:.2f} x {plan.die_height * 1e3:.2f} mm, "
          f"utilization {plan.utilization:.0%}, "
          f"cascade wire {plan.total_wire_length() * 1e3:.2f} mm")

    # 5. Export for external tooling.
    out_dir = Path(tempfile.mkdtemp(prefix="mnsim-dse-"))
    csv_path = to_csv(points, out_dir / "exploration.csv")
    json_path = to_json(points, out_dir / "exploration.json")
    print()
    print(f"exported {len(points)} design points to:")
    print(f"  {csv_path}")
    print(f"  {json_path}")


if __name__ == "__main__":
    main()
