"""Vectorized crossbar solver speedups vs the loop-based reference.

Measures the three claims of the solver rework on the same machine in
the same run and records them in ``BENCH_spice.json`` at the repo root:

* **Nonlinear solve** — the structural-pattern assembly + frozen-LU
  iterative refinement against :func:`repro.spice.reference
  .reference_solve` (Python-loop stamps, fresh ``spsolve`` per
  fixed-point iteration) at 32x32 and 64x64.  Asserted >= 10x at 64.
* **Batched solve** — ``solve_many`` over 32 input vectors against 32
  independent ``solve`` calls on a linear 64x64 network (one
  factorization vs 32).  Asserted >= 5x.
* **Assembly** — the fixed-sparsity value rewrite against the
  loop-based ``reference_assemble`` (recorded, not asserted).

The equivalence suite (``tests/test_spice_vectorized.py``) separately
pins that the fast paths return the reference results.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.spice.reference import reference_assemble, reference_solve
from repro.spice.solver import CrossbarNetwork
from repro.tech import get_memristor_model

REPO_ROOT = Path(__file__).resolve().parent.parent
BEST_OF = 3
BATCH_K = 32


def _best_of(runs, fn):
    """Minimum wall-clock over ``runs`` calls (noise-robust timing)."""
    timings = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _worst_case(device, size):
    """The paper's worst-case array: every cell at ``R_min``, inputs at
    full scale — the deepest nonlinear operating point."""
    resistances = np.full((size, size), device.r_min)
    inputs = np.full(size, device.read_voltage)
    return resistances, inputs


def test_spice_solver_speedups(write_result):
    device = get_memristor_model("RRAM")
    record = {"device": "RRAM", "best_of": BEST_OF}
    lines = ["Vectorized crossbar solver vs loop-based reference:"]

    # Nonlinear solves ------------------------------------------------
    for size in (32, 64):
        resistances, inputs = _worst_case(device, size)
        network = CrossbarNetwork(resistances, 1.0, 1e3, device=device)
        ref_s = _best_of(BEST_OF, lambda: reference_solve(network, inputs))
        new_s = _best_of(BEST_OF, lambda: network.solve(inputs))
        speedup = ref_s / new_s
        record[f"nonlinear_{size}"] = {
            "reference_s": round(ref_s, 6),
            "vectorized_s": round(new_s, 6),
            "speedup": round(speedup, 2),
        }
        lines.append(
            f"  nonlinear {size:3d}x{size:<3d}  "
            f"{ref_s * 1e3:8.1f} ms -> {new_s * 1e3:7.1f} ms  "
            f"({speedup:5.1f}x)"
        )

    # Batched linear solves ------------------------------------------
    rng = np.random.default_rng(42)
    resistances = rng.uniform(device.r_min, device.r_max, size=(64, 64))
    batch = rng.uniform(0.1, device.read_voltage, size=(BATCH_K, 64))
    network = CrossbarNetwork(resistances, 1.0, 1e3, device=None)
    loop_s = _best_of(
        BEST_OF, lambda: [network.solve(v) for v in batch]
    )
    many_s = _best_of(BEST_OF, lambda: network.solve_many(batch))
    batch_speedup = loop_s / many_s
    record["batched_linear_64"] = {
        "vectors": BATCH_K,
        "loop_s": round(loop_s, 6),
        "solve_many_s": round(many_s, 6),
        "speedup": round(batch_speedup, 2),
    }
    lines.append(
        f"  batched K={BATCH_K} 64x64  "
        f"{loop_s * 1e3:8.1f} ms -> {many_s * 1e3:7.1f} ms  "
        f"({batch_speedup:5.1f}x)"
    )

    # Assembly only ---------------------------------------------------
    for size in (32, 64, 128):
        resistances = np.full((size, size), device.r_min)
        inputs = np.full(size, device.read_voltage)
        network = CrossbarNetwork(resistances, 1.0, 1e3)
        conductances = 1.0 / network.resistances
        ref_s = _best_of(
            BEST_OF,
            lambda: reference_assemble(network, conductances, inputs),
        )
        new_s = _best_of(BEST_OF, lambda: network._matrix(conductances))
        record[f"assembly_{size}"] = {
            "reference_s": round(ref_s, 6),
            "vectorized_s": round(new_s, 6),
            "speedup": round(ref_s / new_s, 2),
        }
        lines.append(
            f"  assembly  {size:3d}x{size:<3d}  "
            f"{ref_s * 1e3:8.1f} ms -> {new_s * 1e3:7.1f} ms  "
            f"({ref_s / new_s:5.1f}x)"
        )

    (REPO_ROOT / "BENCH_spice.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    write_result("spice_solver_perf", "\n".join(lines))

    # The issue's acceptance floors (measured same-machine, same-run).
    assert record["nonlinear_64"]["speedup"] >= 10.0, record
    assert record["batched_linear_64"]["speedup"] >= 5.0, record
