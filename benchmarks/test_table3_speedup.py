"""Table III: simulation time of the circuit-level solve vs MNSIM.

The paper reports >7000x speed-up of the behavior-level model over
SPICE, growing with crossbar size.  Here the baseline is the internal
nodal-analysis solver; the benchmark times the analytic model, and the
solver is timed once per size (it is the slow side by construction).
"""

import time

import numpy as np
import pytest

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
)
from repro.report import format_table
from repro.spice.solver import CrossbarNetwork
from repro.tech import get_interconnect_node, get_memristor_model
from repro.tech.memristor import CellType

SIZES = (16, 32, 64, 128)


def _solver_time(device, size, segment) -> float:
    resistances = np.full((size, size), device.r_min)
    inputs = np.full(size, device.read_voltage)
    network = CrossbarNetwork(
        resistances, segment, DEFAULT_SENSE_RESISTANCE, device=device
    )
    start = time.perf_counter()
    network.solve(inputs)
    return time.perf_counter() - start


def test_table3_speedup(benchmark, write_result):
    device = get_memristor_model("RRAM")
    segment = get_interconnect_node(45).segment_resistance(
        device.cell_pitch(CellType.ONE_T_ONE_R)
    )

    # Timed side: one full sweep of behavior-level error evaluations.
    def run_model_sweep():
        return [
            analog_error_rate(size, size, segment, device)
            for size in SIZES
        ]

    benchmark(run_model_sweep)

    # Per-size comparison.
    rows = []
    speedups = []
    for size in SIZES:
        solver_seconds = _solver_time(device, size, segment)
        start = time.perf_counter()
        repeats = 2000
        for _ in range(repeats):
            analog_error_rate(size, size, segment, device)
        model_seconds = (time.perf_counter() - start) / repeats
        speedup = solver_seconds / model_seconds
        speedups.append(speedup)
        rows.append([
            size,
            f"{solver_seconds:.4f}",
            f"{model_seconds * 1e6:.2f}",
            f"{speedup:,.0f}x",
        ])
    write_result(
        "table3_speedup",
        "Table III reproduction: circuit-level solve vs MNSIM model\n"
        + format_table(
            ["crossbar size", "solver (s)", "model (us)", "speed-up"], rows
        ),
    )

    # Paper shape: huge speed-up, increasing with size, >7000x for the
    # large arrays.  The vectorized solver narrowed the gap at the
    # smallest size (a 16x16 solve now takes single-digit ms), so the
    # absolute floor there is lower than for the rest of the sweep.
    assert all(s > 300 for s in speedups)
    assert all(s > 1000 for s in speedups[1:])
    assert speedups[-1] > max(speedups[0], 7000)
