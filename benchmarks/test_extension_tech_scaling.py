"""Extension experiment: CMOS technology scaling of the same design.

Holds the architecture fixed (the Table II validation workload at
crossbar 128) and sweeps the CMOS node from 130 nm to 22 nm — the
scaling study a released simulator is expected to include.  Expected
shapes: digital area and energy fall monotonically with the node, while
the crossbar's analog contribution (device-pitch-bound area, resistance-
bound energy) does not scale, so the **analog share grows** at advanced
nodes — the classic mixed-signal scaling wall.
"""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.breakdown import accelerator_breakdown
from repro.config import SimConfig
from repro.nn.networks import validation_mlp
from repro.report import format_table
from repro.units import MM2, UJ

NODES = (130, 90, 65, 45, 32, 22)


def test_extension_tech_scaling(benchmark, write_result):
    def sweep():
        results = {}
        for node in NODES:
            config = SimConfig(
                crossbar_size=128, cmos_tech=node, interconnect_tech=45,
                weight_bits=8, signal_bits=8, parallelism_degree=16,
            )
            accelerator = Accelerator(config, validation_mlp())
            summary = accelerator.summary()
            breakdown = accelerator_breakdown(accelerator)
            analog_area_share = (
                breakdown.area_fraction("crossbar")
                + breakdown.area_fraction("dac")
                + breakdown.area_fraction("read_circuit")
            )
            results[node] = (summary, analog_area_share)
        return results

    results = benchmark(sweep)

    rows = [
        [
            f"{node} nm",
            f"{summary.area / MM2:.4f}",
            f"{summary.energy_per_sample / UJ:.4f}",
            f"{summary.power * 1e3:.2f}",
            f"{share:.1%}",
        ]
        for node, (summary, share) in results.items()
    ]
    write_result(
        "extension_tech_scaling",
        "Extension: CMOS node scaling of the validation design "
        "(128 crossbars, p=16)\n"
        + format_table(
            ["CMOS node", "area mm^2", "energy uJ", "power mW",
             "analog area share"],
            rows,
        ),
    )

    areas = [results[node][0].area for node in NODES]
    energies = [results[node][0].energy_per_sample for node in NODES]
    shares = [results[node][1] for node in NODES]

    # Digital scaling: total area and energy fall with the node.
    assert areas == sorted(areas, reverse=True)
    assert energies == sorted(energies, reverse=True)
    # The mixed-signal wall: the analog share grows as digital shrinks.
    assert shares[-1] > shares[0]
    # Scaling from 130 nm to 22 nm buys a large factor, but far from
    # the pure-digital (130/22)^2 ~ 35x because the analog floor stays.
    assert 2 < areas[0] / areas[-1] < 35
