"""Table V: the trade-off between area, energy and accuracy over
crossbar sizes {8 .. 256} at the 45 nm interconnect node.

Paper shapes: area and energy fall monotonically as crossbars grow
(fewer peripheral circuits per weight); the computing error rate is
U-shaped with its minimum at a middle size (64 in the paper) because
interconnect error grows with size while the nonlinear-device error
grows as crossbars shrink.
"""

import pytest

from repro.config import SimConfig
from repro.dse.tradeoff import size_tradeoff
from repro.nn.networks import large_bank_layer
from repro.report import format_table
from repro.units import MM2, UJ

BASE = SimConfig(
    cmos_tech=45, interconnect_tech=45, weight_bits=4, signal_bits=8,
    parallelism_degree=0,
)
SIZES = (256, 128, 64, 32, 16, 8)


def test_table5_size_tradeoff(benchmark, write_result):
    network = large_bank_layer()
    rows = benchmark(lambda: size_tradeoff(BASE, network, sizes=SIZES))

    table = format_table(
        ["crossbar size", "error rate", "area mm^2", "energy uJ"],
        [
            [r.crossbar_size, f"{r.error_rate:.2%}",
             f"{r.area / MM2:.2f}", f"{r.energy / UJ:.2f}"]
            for r in rows
        ],
    )
    write_result(
        "table5_size_tradeoff",
        "Table V reproduction: trade-off vs crossbar size (45 nm wire)\n"
        + table,
    )

    by_size = {r.crossbar_size: r for r in rows}
    ascending = sorted(by_size)

    # Area and energy fall monotonically with crossbar size.
    areas = [by_size[s].area for s in ascending]
    energies = [by_size[s].energy for s in ascending]
    assert areas == sorted(areas, reverse=True)
    assert energies == sorted(energies, reverse=True)

    # Error rate is U-shaped with an interior minimum at a middle size.
    errors = [by_size[s].error_rate for s in ascending]
    minimum_index = errors.index(min(errors))
    assert 0 < minimum_index < len(errors) - 1
    assert ascending[minimum_index] in (32, 64, 128)

    # The paper's headline: accuracy improves over the 256 design only
    # when the crossbar size comes down to the middle of the range.
    assert by_size[64].error_rate < by_size[256].error_rate
    assert by_size[8].error_rate > by_size[64].error_rate
