"""Extension experiment: stuck-at fault tolerance of a deployed network.

Trains a classifier, deploys it through the functional simulator, and
sweeps the stuck-at defect rate — the yield-analysis curve a crossbar
vendor needs.  Expected shape: a graceful plateau at low defect rates
(the network's margin absorbs isolated corrupted weights) followed by a
collapse toward chance as faults multiply.
"""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.functional import FunctionalAccelerator
from repro.functional.faults import fault_study
from repro.nn.networks import mlp
from repro.nn.trainer import (
    MlpTrainer,
    classification_accuracy,
    make_cluster_dataset,
)
from repro.report import format_table
from repro.report_plot import scatter_plot

FAULT_RATES = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.3)
CLASSES = 4


def test_extension_fault_tolerance(benchmark, write_result):
    rng = np.random.default_rng(2016)
    x, y = make_cluster_dataset(
        rng, features=16, classes=CLASSES, samples_per_class=60
    )
    network = mlp([16, 24, CLASSES], name="fault-study")
    trainer = MlpTrainer(network, rng)
    result = trainer.train(x[:180], y[:180], epochs=30)
    x_test, y_test = x[180:], y[180:]
    config = SimConfig(crossbar_size=32, weight_bits=8, signal_bits=8)

    def build():
        return FunctionalAccelerator(config, network, result.weights)

    def score(accelerator):
        return classification_accuracy(
            lambda v: accelerator.forward(v)[-1], x_test, y_test
        )

    def run_study():
        local_rng = np.random.default_rng(99)
        return fault_study(build, score, FAULT_RATES, local_rng)

    points = benchmark.pedantic(run_study, rounds=1, iterations=1)

    chart = scatter_plot(
        [(p.fault_rate, p.accuracy) for p in points],
        name="accuracy", width=50, height=12,
        x_label="stuck-at fault rate", y_label="test accuracy",
    )
    write_result(
        "extension_fault_tolerance",
        "Extension: accuracy vs stuck-at defect rate (mapped classifier)\n"
        + format_table(
            ["fault rate", "cells flipped", "test accuracy"],
            [
                [f"{p.fault_rate:.1%}", p.cells_flipped,
                 f"{p.accuracy:.1%}"]
                for p in points
            ],
        )
        + "\n\n" + chart,
    )

    by_rate = {p.fault_rate: p.accuracy for p in points}
    chance = 1.0 / CLASSES

    # Clean deployment is accurate.
    assert by_rate[0.0] > 0.85
    # Graceful degradation: sub-percent defect rates cost little.
    assert by_rate[0.005] > by_rate[0.0] - 0.15
    # Collapse: at 30 % defects the network approaches chance.
    assert by_rate[0.3] < by_rate[0.0]
    assert by_rate[0.3] < chance + 0.45
    # Monotone-ish overall trend (allowing small-sample noise).
    assert by_rate[0.3] <= by_rate[0.01] + 0.05
