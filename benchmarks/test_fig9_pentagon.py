"""Fig. 9: normalized five-axis performance pentagons of the optimal
designs — (a) the large computation bank, (b) the deep CNN.

Paper shapes: each optimum dominates its own axis; optimising one
factor leaves other factors low (the spread is large for the single
layer); the CNN case shows a *smaller* spread between optimal designs.
"""

import statistics

import pytest

from repro.config import SimConfig
from repro.dse import DesignSpace, explore, optimal_table, pentagon_factors
from repro.nn.networks import large_bank_layer, vgg16
from repro.report import format_table

AXES = ("reciprocal_area", "energy_efficiency", "reciprocal_power", "speed")

LARGE_BANK_SPACE = DesignSpace(
    crossbar_sizes=(16, 32, 64, 128, 256, 512, 1024),
    parallelism_degrees=(1, 4, 16, 64, 256),
    interconnect_nodes=(18, 28, 45),
)
CNN_SPACE = DesignSpace(
    crossbar_sizes=(32, 64, 128, 256, 512),
    parallelism_degrees=(1, 4, 16, 64, 256),
    interconnect_nodes=(18, 28, 45, 90),
)


def _pentagons(base, network, space, bound):
    points = explore(base, network, space, max_error_rate=bound)
    best = optimal_table(points)
    return best, pentagon_factors(list(best.values()))


def _axis_metric_map():
    """Each optimization target and the pentagon axis it should win."""
    return {
        "area": "reciprocal_area",
        "energy": "energy_efficiency",
        "latency": "speed",
    }


def test_fig9_pentagon(benchmark, write_result):
    base_bank = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
    base_cnn = SimConfig(cmos_tech=45, weight_bits=8, signal_bits=8)

    (bank_best, bank_factors), (cnn_best, cnn_factors) = benchmark.pedantic(
        lambda: (
            _pentagons(base_bank, large_bank_layer(), LARGE_BANK_SPACE, 0.25),
            _pentagons(base_cnn, vgg16(), CNN_SPACE, 0.50),
        ),
        rounds=1, iterations=1,
    )

    def render(title, best, factors):
        rows = [
            [metric] + [f"{entry[a]:.3f}" for a in AXES]
            + [f"{entry['accuracy']:.3f}"]
            for (metric, _p), entry in zip(best.items(), factors)
        ]
        return f"{title}\n" + format_table(
            ["optimised for", *AXES, "accuracy"], rows
        )

    write_result(
        "fig9_pentagon",
        render("Fig. 9(a) reproduction: large computation bank",
               bank_best, bank_factors)
        + "\n\n"
        + render("Fig. 9(b) reproduction: VGG-16", cnn_best, cnn_factors),
    )

    for best, factors in ((bank_best, bank_factors), (cnn_best, cnn_factors)):
        by_metric = dict(zip(best.keys(), factors))
        # Each optimum scores 1.0 on its own axis.
        for metric, axis in _axis_metric_map().items():
            assert by_metric[metric][axis] == pytest.approx(1.0)
        # The accuracy optimum has the best accuracy axis.
        accuracies = {m: f["accuracy"] for m, f in by_metric.items()}
        assert accuracies["accuracy"] == max(accuracies.values())

    # The paper's Fig. 9 observation: optimising a single factor leaves
    # others low for the single layer; the whole-network (CNN) case has
    # a smaller spread between optimal designs.
    def spread(factors):
        values = [
            entry[axis]
            for entry in factors
            for axis in AXES
        ]
        return statistics.pstdev(values)

    assert spread(bank_factors) > 0.2  # strongly differentiated optima
    assert spread(cnn_factors) <= spread(bank_factors) + 0.1
