"""Extension experiment: SNN rate-coding window trade-off.

Sweeps the observation window of a rate-coded SNN (Sec. II.B.2's
network class) on the mapped accelerator: energy and latency rise
linearly with the window while the coding error falls as 1/T — the
operating curve a designer uses to pick the window for a target
precision.
"""

import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.nn.networks import mlp
from repro.nn.snn import SnnTimingModel
from repro.report import format_table
from repro.report_plot import line_plot
from repro.units import UJ, US

WINDOWS = (8, 16, 32, 64, 128, 256)


def test_extension_snn_window(benchmark, write_result):
    config = SimConfig(
        crossbar_size=128, cmos_tech=45, interconnect_tech=45,
        parallelism_degree=16,
    )
    network = mlp([256, 128, 10], name="snn-window", activation="if",
                  network_type="SNN")

    def sweep():
        model = SnnTimingModel(Accelerator(config, network))
        return model, model.sweep(windows=WINDOWS)

    model, points = benchmark(sweep)

    chart = line_plot(
        {
            "energy uJ": [
                (p.timesteps, p.energy_per_sample / UJ) for p in points
            ],
            "coding err %": [
                (p.timesteps, p.rate_coding_error * 100) for p in points
            ],
        },
        width=50, height=12, x_label="window T", y_label="value",
        logx=True,
    )
    write_result(
        "extension_snn_window",
        "Extension: SNN rate-coding window trade-off\n"
        + format_table(
            ["window T", "eff. bits", "coding err", "energy uJ",
             "latency us"],
            [
                [p.timesteps, f"{p.effective_bits:.0f}",
                 f"{p.rate_coding_error:.3%}",
                 f"{p.energy_per_sample / UJ:.3f}",
                 f"{p.latency_per_sample / US:.2f}"]
                for p in points
            ],
        )
        + "\n\n" + chart,
    )

    energies = [p.energy_per_sample for p in points]
    errors = [p.rate_coding_error for p in points]

    # Linear cost in the window.
    assert energies[-1] == pytest.approx(
        energies[0] * WINDOWS[-1] / WINDOWS[0], rel=1e-9
    )
    # 1/T precision.
    assert errors[-1] == pytest.approx(
        errors[0] * WINDOWS[0] / WINDOWS[-1], rel=1e-9
    )
    # The window needed for 8-bit-equivalent coding is 256.
    assert model.window_for_error(0.5 / 256) == 256
