"""Ablation: data-precision choices (weight/signal bit widths).

The paper fixes precisions per case study (4-bit weights/8-bit signals
for the large bank; 8/8 for VGG-16) citing quantization results [14].
This ablation separates the two error sources the paper's Sec. VI
distinguishes — quantization error vs analog computing error — by
measuring, on the functional simulator:

* the quantization-only deviation (IDEAL mode vs the float network)
  across weight precisions;
* the hardware cost (crossbars, area) each precision buys.
"""

import numpy as np
import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.functional import FunctionalAccelerator
from repro.nn.networks import mlp
from repro.nn.workloads import random_weights
from repro.report import format_table
from repro.units import MM2

WEIGHT_BITS = (2, 4, 6, 8)
NETWORK = mlp([128, 64], name="precision-probe", activation="none")


def _float_reference(weights, inputs):
    return inputs @ weights[0].T


def test_ablation_precision(benchmark, write_result):
    rng = np.random.default_rng(11)
    # Condition the measurement: weights normalised to ~90 % of the
    # fixed-point full scale (so the quantizer's range is actually
    # used) and inputs kept small enough that layer outputs stay
    # inside the signed signal range (saturation would otherwise
    # floor the measurement and hide the weight-precision effect).
    raw = random_weights(NETWORK, rng)
    weights = [w * (0.9 / np.max(np.abs(w))) for w in raw]
    inputs = rng.uniform(-0.08, 0.08, size=(20, 128))
    reference = _float_reference(weights, inputs)
    scale = np.max(np.abs(reference))

    def sweep():
        results = {}
        for bits in WEIGHT_BITS:
            config = SimConfig(
                crossbar_size=128, cmos_tech=45, interconnect_tech=45,
                weight_bits=bits, signal_bits=8,
            )
            functional = FunctionalAccelerator(config, NETWORK, weights)
            outputs = functional.forward(inputs)[-1]
            quant_error = float(
                np.mean(np.abs(outputs - reference)) / scale
            )
            summary = Accelerator(config, NETWORK).summary()
            results[bits] = (quant_error, summary)
        return results

    results = benchmark(sweep)

    rows = [
        [
            bits,
            f"{error:.4%}",
            Accelerator(
                SimConfig(crossbar_size=128, weight_bits=bits),
                NETWORK,
            ).total_crossbars,
            f"{summary.area / MM2:.4f}",
        ]
        for bits, (error, summary) in results.items()
    ]
    write_result(
        "ablation_precision",
        "Ablation: weight precision vs quantization error and cost\n"
        + format_table(
            ["weight bits", "quantization error", "crossbars",
             "area mm^2"],
            rows,
        ),
    )

    errors = [results[bits][0] for bits in WEIGHT_BITS]
    # Quantization error falls monotonically with precision...
    assert errors == sorted(errors, reverse=True)
    # ...by a large factor from 2 to 8 bits (the residual ~1 % floor is
    # the 8-bit *signal* quantization, the other error source of
    # Sec. VI's decomposition).
    assert errors[0] / errors[-1] > 5
    # 8-bit weights reach the signal-quantization floor (paper's [14]).
    assert errors[-1] < 0.02
    # All precisions up to the device's 7 magnitude bits cost the same
    # crossbars (one slice); the area differences stay marginal.
    crossbars = {
        Accelerator(
            SimConfig(crossbar_size=128, weight_bits=bits), NETWORK
        ).total_crossbars
        for bits in WEIGHT_BITS
    }
    assert crossbars == {2}
