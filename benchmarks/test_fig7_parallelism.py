"""Fig. 7: normalized area and latency vs computation parallelism degree
for different crossbar sizes.

Paper shapes: as the parallelism degree falls, latency rises with a
similar trend across crossbar sizes, while the area reduction varies —
large crossbars gain *less* relative area from sharing read circuits
because their peripheral (neuron/merge) area dominates.
"""

import pytest

from repro.config import SimConfig
from repro.dse.tradeoff import parallelism_sweep
from repro.nn.networks import large_bank_layer
from repro.report import format_table

BASE = SimConfig(
    cmos_tech=45, interconnect_tech=45, weight_bits=4, signal_bits=8
)
SIZES = (64, 128, 256, 512)


def test_fig7_parallelism(benchmark, write_result):
    network = large_bank_layer()
    rows = benchmark(
        lambda: parallelism_sweep(BASE, network, sizes=SIZES)
    )

    table_rows = [
        [r.crossbar_size, r.parallelism_degree,
         f"{r.normalized_area:.4f}", f"{r.normalized_latency:.4f}"]
        for r in sorted(
            rows, key=lambda r: (r.crossbar_size, r.parallelism_degree)
        )
    ]
    from repro.report_plot import line_plot

    area_curves = {
        f"xbar{size}": [
            (r.parallelism_degree, r.normalized_area)
            for r in rows
            if r.crossbar_size == size
        ]
        for size in SIZES
    }
    chart = line_plot(
        area_curves, width=56, height=14, x_label="parallelism degree",
        y_label="normalized area", logx=True,
    )
    write_result(
        "fig7_parallelism",
        "Fig. 7 reproduction: normalized area & latency vs parallelism\n"
        + format_table(
            ["crossbar", "p", "norm. area", "norm. latency"], table_rows
        )
        + "\n\n" + chart,
    )

    groups = {
        size: sorted(
            (r for r in rows if r.crossbar_size == size),
            key=lambda r: r.parallelism_degree,
        )
        for size in SIZES
    }
    for size, group in groups.items():
        latencies = [r.latency for r in group]
        areas = [r.area for r in group]
        # Latency falls monotonically as the degree rises; area rises.
        assert latencies == sorted(latencies, reverse=True), size
        assert areas == sorted(areas), size
        # Normalisation anchored at 1.0 per size.
        assert max(r.normalized_area for r in group) == pytest.approx(1.0)
        assert max(r.normalized_latency for r in group) == pytest.approx(1.0)

    # The area reduction from sharing read circuits (min normalized
    # area at degree 1) is weaker for large crossbars: peripheral area
    # dominates, limiting the gain (the paper's Fig. 7 observation).
    min_norm_area = {
        size: min(r.normalized_area for r in group)
        for size, group in groups.items()
    }
    assert min_norm_area[512] > min_norm_area[64]
