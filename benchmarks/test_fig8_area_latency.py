"""Fig. 8: the area-latency trade-off across parallelism degrees and
crossbar sizes.

Paper shapes: large area reductions are available at little latency
cost near the fully-parallel end, and each crossbar size's curve has an
inflection (knee) point after which latency explodes for marginal area
gains.
"""

import pytest

from repro.config import SimConfig
from repro.dse.tradeoff import (
    inflection_point,
    parallelism_sweep,
    pareto_frontier,
)
from repro.nn.networks import large_bank_layer
from repro.report import format_table
from repro.units import MM2, US

BASE = SimConfig(
    cmos_tech=45, interconnect_tech=45, weight_bits=4, signal_bits=8
)
SIZES = (64, 128, 256)


def test_fig8_area_latency(benchmark, write_result):
    network = large_bank_layer()
    rows = benchmark(
        lambda: parallelism_sweep(BASE, network, sizes=SIZES)
    )

    lines = ["Fig. 8 reproduction: area-latency trade-off with knees"]
    knees = {}
    for size in SIZES:
        group = [r for r in rows if r.crossbar_size == size]
        points = [(r.area, r.latency) for r in group]
        knee = inflection_point(points)
        knees[size] = knee
        frontier = pareto_frontier(points)
        lines.append(
            f"\ncrossbar {size}: {len(frontier)}/{len(points)} points on "
            f"the frontier, knee at area={knee[0] / MM2:.3f} mm^2, "
            f"latency={knee[1] / US:.4f} us"
        )
        lines.append(format_table(
            ["p", "area mm^2", "latency us"],
            [
                [r.parallelism_degree, f"{r.area / MM2:.3f}",
                 f"{r.latency / US:.4f}"]
                for r in sorted(group, key=lambda r: r.parallelism_degree)
            ],
        ))
    from repro.report_plot import line_plot

    curves = {
        f"xbar{size}": [
            (r.area / MM2, r.latency / US)
            for r in rows
            if r.crossbar_size == size
        ]
        for size in SIZES
    }
    lines.append("")
    lines.append(
        line_plot(curves, width=56, height=16, x_label="area (mm^2)",
                  y_label="latency (us)")
    )
    write_result("fig8_area_latency", "\n".join(lines))

    for size in SIZES:
        group = sorted(
            (r for r in rows if r.crossbar_size == size),
            key=lambda r: r.parallelism_degree,
        )
        points = [(r.area, r.latency) for r in group]

        # The sweep traces a proper trade-off: every point is Pareto
        # non-dominated (area and latency move in opposite directions).
        assert pareto_frontier(points) == sorted(points)

        # The knee is interior: neither the fully-serial nor the
        # fully-parallel extreme (the paper's inflection-point claim).
        knee = knees[size]
        extremes = {points[0], points[-1]}
        assert knee not in extremes

        # Large area reduction at small latency cost near the parallel
        # end: halving the read circuits (last -> second-to-last degree)
        # saves more area fraction than it costs latency fraction.
        full = group[-1]
        half = group[-2]
        area_saving = 1 - half.area / full.area
        latency_cost = half.latency / full.latency - 1
        assert area_saving > 0
        assert latency_cost < 1.0  # less than 2x latency for the first halving
