"""Ablation: the computation-oriented decoder (Fig. 4) and cell style.

Two circuit-level design choices the reference design makes:

1. adding one NOR gate per line to the memory decoder so COMPUTE can
   select every row at once — the enabling change for crossbar
   parallelism, which must cost almost nothing;
2. MOS-accessed (1T1R) vs cross-point (0T1R) cells — Eq. 7 vs Eq. 8:
   0T1R is ~2.25x denser for the reference W/L but leaks nothing.
"""

import pytest

from repro.arch.unit import ComputationUnit
from repro.circuits.decoder import DecoderModule
from repro.config import SimConfig
from repro.report import format_table
from repro.tech import get_cmos_node
from repro.units import UM2


def test_ablation_decoder_and_cells(benchmark, write_result):
    cmos = get_cmos_node(45)

    def build_all():
        rows = {}
        for lines in (64, 128, 256, 512):
            memory = DecoderModule(cmos, lines, computation_oriented=False)
            compute = DecoderModule(cmos, lines, computation_oriented=True)
            rows[lines] = (memory.performance(), compute.performance())
        return rows

    decoder_rows = benchmark(build_all)

    table = []
    overheads = []
    for lines, (memory, compute) in sorted(decoder_rows.items()):
        overhead = compute.area / memory.area - 1
        overheads.append(overhead)
        table.append([
            lines,
            f"{memory.area / UM2:.1f}",
            f"{compute.area / UM2:.1f}",
            f"{overhead:.1%}",
            f"{(compute.latency / memory.latency - 1):.1%}",
        ])

    # Cell-style ablation at the unit level.
    base = SimConfig(crossbar_size=128, cmos_tech=45, interconnect_tech=45)
    unit_1t1r = ComputationUnit(base)
    unit_0t1r = ComputationUnit(base.replace(cell_type="0T1R"))
    perf_1t1r = unit_1t1r.compute_performance()
    perf_0t1r = unit_0t1r.compute_performance()
    xbar_1t1r = unit_1t1r.crossbar.area
    xbar_0t1r = unit_0t1r.crossbar.area

    write_result(
        "ablation_decoder_cells",
        "Ablation: computation-oriented decoder overhead (Fig. 4)\n"
        + format_table(
            ["lines", "memory um^2", "compute um^2", "area ovh",
             "delay ovh"],
            table,
        )
        + "\n\nAblation: 1T1R vs 0T1R cells (Eq. 7 vs Eq. 8)\n"
        + format_table(
            ["cell", "crossbar area um^2", "unit leakage uW"],
            [
                ["1T1R", f"{xbar_1t1r / UM2:.1f}",
                 f"{perf_1t1r.leakage_power * 1e6:.2f}"],
                ["0T1R", f"{xbar_0t1r / UM2:.1f}",
                 f"{perf_0t1r.leakage_power * 1e6:.2f}"],
            ],
        ),
    )

    # The select-all capability costs < 50 % decoder area and the
    # decoder itself is a trivial fraction of the unit.
    assert all(0 < o < 0.5 for o in overheads)
    decoder_area = DecoderModule(cmos, 128).performance().area
    assert decoder_area / perf_1t1r.area < 0.05

    # Eq. 7 vs Eq. 8: 3(W/L+1) F^2 = 9 F^2 vs 4 F^2 -> 2.25x denser.
    assert xbar_1t1r / xbar_0t1r == pytest.approx(9 / 4, rel=1e-6)
    # Cross-point cells eliminate the access-transistor leakage.
    assert perf_0t1r.leakage_power < perf_1t1r.leakage_power
