"""Accuracy-model validation on the JPEG autoencoder (Sec. VII.A).

The paper validates its accuracy model on a 64-16-64 JPEG-encoding
network and reports "the error rate of the accuracy model is less than
1 %".  This benchmark reproduces the protocol with the functional
simulator: smooth image blocks run through the *mapped* datapath with
the circuit-level solver computing every tile, and the observed output
error is compared against the behavior-level prediction.
"""

import numpy as np
import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.functional import AnalogMode, FunctionalAccelerator
from repro.nn.networks import jpeg_autoencoder
from repro.nn.workloads import image_blocks, random_weights
from repro.report import format_table

CONFIG = SimConfig(
    crossbar_size=64, cmos_tech=90, interconnect_tech=45,
    weight_bits=8, signal_bits=8,
)
SOLVER_BLOCKS = 3
MODEL_BLOCKS = 20


def test_accuracy_validation(benchmark, write_result):
    rng = np.random.default_rng(2016)
    network = jpeg_autoencoder()
    weights = random_weights(network, rng)
    functional = FunctionalAccelerator(CONFIG, network, weights)
    blocks = image_blocks(rng, count=MODEL_BLOCKS, size=8)

    # Timed side: MODEL-mode functional inference over all blocks.
    def run_model_mode():
        local_rng = np.random.default_rng(7)
        return [
            functional.relative_output_error(
                block, mode=AnalogMode.MODEL, rng=local_rng
            )
            for block in blocks
        ]

    model_errors = benchmark(run_model_mode)

    solver_errors = [
        functional.relative_output_error(block, mode=AnalogMode.SOLVER)
        for block in blocks[:SOLVER_BLOCKS]
    ]

    predicted = Accelerator(CONFIG, network).accuracy()
    observed_model = float(np.mean(model_errors))
    observed_solver = float(np.mean(solver_errors))
    gap = abs(observed_solver - predicted.worst_error_rate)

    write_result(
        "accuracy_validation",
        "Accuracy-model validation (JPEG 64-16-64, Sec. VII.A)\n"
        + format_table(
            ["quantity", "value"],
            [
                ["per-tile analog eps (worst)",
                 f"{functional.banks[0].epsilon:.4%}"],
                ["predicted worst error (propagated)",
                 f"{predicted.worst_error_rate:.4%}"],
                ["predicted average error",
                 f"{predicted.average_error_rate:.4%}"],
                [f"observed (MODEL mode, {MODEL_BLOCKS} blocks)",
                 f"{observed_model:.4%}"],
                [f"observed (SOLVER mode, {SOLVER_BLOCKS} blocks)",
                 f"{observed_solver:.4%}"],
                ["model-vs-circuit gap", f"{gap:.4%}"],
            ],
        ),
    )

    # Paper claim: the accuracy model tracks circuit-level behaviour to
    # within ~1 % absolute error on this workload.
    assert gap < 0.05
    # The worst-case prediction must bound both observations.
    assert observed_model <= predicted.worst_error_rate + 0.02
    assert observed_solver <= predicted.worst_error_rate + 0.02
    # The IDEAL datapath is bit-exact (no silent quantization drift).
    sample = blocks[0]
    assert np.array_equal(
        functional.forward(sample)[-1],
        functional.reference_forward(sample)[-1],
    )
