"""Table IV: design-space exploration of the 2048x1024 computation bank.

Traverses the paper's grid (crossbar sizes 4..1024, parallelism degrees
1..256, interconnect {18, 22, 28, 36, 45} nm) under the 25 % worst-case
error constraint and reports the optimum per optimization target.
"""

import pytest

from repro.config import SimConfig
from repro.dse import DesignSpace, explore, optimal_table
from repro.nn.networks import large_bank_layer
from repro.report import format_table
from repro.units import MM2, UJ, US

BASE = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
SPACE = DesignSpace()
ERROR_BOUND = 0.25


def test_table4_large_bank_dse(benchmark, write_result):
    network = large_bank_layer()

    points = benchmark(
        lambda: explore(BASE, network, SPACE, max_error_rate=ERROR_BOUND)
    )
    assert points, "no feasible design under the 25% error bound"
    best = optimal_table(points)

    rows = []
    for metric, point in best.items():
        s = point.summary
        rows.append([
            metric,
            f"{s.area / MM2:.3f}",
            f"{s.energy_per_sample / UJ:.3f}",
            f"{s.compute_latency / US:.4f}",
            f"{s.worst_error_rate:.2%}",
            f"{s.power:.3f}",
            point.crossbar_size,
            point.interconnect_tech,
            point.parallelism_degree,
        ])
    write_result(
        "table4_large_bank_dse",
        f"Table IV reproduction: {len(SPACE)} designs, "
        f"{len(points)} feasible (error <= {ERROR_BOUND:.0%})\n"
        + format_table(
            ["target", "area mm^2", "energy uJ", "latency us", "error",
             "power W", "xbar", "wire nm", "p"],
            rows,
        ),
    )

    area_opt = best["area"]
    energy_opt = best["energy"]
    latency_opt = best["latency"]
    accuracy_opt = best["accuracy"]

    # Paper shapes:
    # 1. Area-optimal: large crossbars, low parallelism degree, but it
    #    pays in energy and latency ("the energy of the entire
    #    computation grows back").
    assert area_opt.crossbar_size >= 256
    assert area_opt.parallelism_degree <= 32
    assert area_opt.energy > energy_opt.energy
    assert area_opt.latency > latency_opt.latency
    # 2. Energy- and latency-optimal designs use high parallelism.
    assert energy_opt.parallelism_degree >= 64
    assert latency_opt.parallelism_degree >= 64
    # 3. Accuracy-optimal uses a small-to-middle crossbar size, and is
    #    paid for with area (Table IV: 117 mm^2 vs 12..29 mm^2).
    assert accuracy_opt.crossbar_size <= 128
    assert accuracy_opt.error_rate <= area_opt.error_rate
    assert accuracy_opt.area > area_opt.area
