"""Table VII: simulating PRIME and ISAAC through the customization
interfaces.

The paper notes the two columns are not comparable (different task
scales); the reproduced shapes are the structural facts (4 vs 96
crossbars), the ISAAC 22-cycle pipeline latency (2.2 us), and the
relative ordering (the ISAAC tile dwarfs a PRIME FF-subarray).
"""

import pytest

from repro.related import simulate_isaac, simulate_prime
from repro.report import format_table
from repro.units import MM2, UJ, US


def test_table7_related_work(benchmark, write_result):
    prime, isaac = benchmark(lambda: (simulate_prime(), simulate_isaac()))

    write_result(
        "table7_related_work",
        "Table VII reproduction: PRIME FF-subarray and ISAAC tile\n"
        + format_table(
            ["metric", "PRIME", "ISAAC"],
            [
                ["CMOS tech", "65 nm", "32 nm"],
                ["crossbars", prime.crossbars, isaac.crossbars],
                ["area (mm^2)", f"{prime.area / MM2:.3f}",
                 f"{isaac.area / MM2:.3f}"],
                ["energy per task (uJ)",
                 f"{prime.energy_per_task / UJ:.3f}",
                 f"{isaac.energy_per_task / UJ:.3f}"],
                ["latency (us)", f"{prime.latency / US:.3f}",
                 f"{isaac.latency / US:.3f}"],
                ["accuracy", f"{prime.relative_accuracy:.1%}",
                 f"{isaac.relative_accuracy:.1%}"],
            ],
        ),
    )

    # Structural facts from Sec. VII.E.
    assert prime.crossbars == 4
    assert isaac.crossbars == 96
    # ISAAC's customised latency: 22 x 100 ns = 2.2 us (exact in paper).
    assert isaac.latency / US == pytest.approx(2.2)
    # Relative ordering and magnitude windows of Table VII.
    assert isaac.area > prime.area
    assert isaac.energy_per_task > prime.energy_per_task
    assert 0.01 < prime.area / MM2 < 10
    assert 0.05 < isaac.area / MM2 < 20
    assert prime.relative_accuracy > 0.85
    assert isaac.relative_accuracy > 0.85
