"""End-to-end batched evaluation vs the point-wise path.

Measures the three sweeps that ride :func:`repro.spice.solver
.solve_batch` / the engine's ``batch_worker`` hook and records them in
``BENCH_batch.json`` at the repo root:

* **Monte Carlo** — 256 trials at 16x16 and 64 at 64x64, batched
  (default) vs ``RunPolicy(batch_within_chunk=False)``.
* **DSE** — the full default design space (300 points), shape-grouped
  accuracy sharing vs per-point evaluation.
* **Fault campaign** — a 64-mask 16x16 cell (4 rates x 16 trials) and
  an 8x8 two-mode sweep, batched mask evaluation vs the trial loop.

Every pair is additionally asserted **byte-identical** — that is the
load-bearing contract (DESIGN.md S22): flipping the batching knob can
never change results or cache keys.

The speedup floors are deliberately honest no-regression guards, not
the issue's aspirational >=3x/>=5x: under byte-identity every member's
numeric factorization and triangular solves must stay per-member
(gstrf alone is ~91% of a linear 64x64 trial), so the bit-exact
ceiling is set by the assembly/bookkeeping fraction — roughly 1.1-1.4x
on small arrays and parity at 64x64, where cache pressure offsets the
amortised assembly.  DESIGN.md S22 records the measured breakdown.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.accuracy.montecarlo import run_monte_carlo
from repro.config import SimConfig
from repro.dse.explorer import explore
from repro.dse.space import DesignSpace
from repro.faults.campaign import CampaignSpec, run_campaign
from repro.nn.networks import large_bank_layer
from repro.runtime.pool import RunPolicy
from repro.tech import get_memristor_model

REPO_ROOT = Path(__file__).resolve().parent.parent
BEST_OF = 2
POINTWISE = RunPolicy(batch_within_chunk=False)


def _best_of(fn):
    timings = []
    result = None
    for _ in range(BEST_OF):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def _row(record, lines, name, pointwise_s, batched_s, floor):
    speedup = pointwise_s / batched_s
    record[name] = {
        "pointwise_s": round(pointwise_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(speedup, 2),
        "floor": floor,
    }
    lines.append(
        f"  {name:24s}  {pointwise_s * 1e3:8.1f} ms -> "
        f"{batched_s * 1e3:7.1f} ms  ({speedup:5.2f}x)"
    )
    return speedup


def test_batched_evaluation(write_result):
    device = get_memristor_model("RRAM")
    record = {"device": "RRAM", "best_of": BEST_OF, "byte_identical": {}}
    lines = ["Batched evaluation vs point-wise (byte-identical pairs):"]
    floors = {}

    # Monte Carlo -----------------------------------------------------
    for size, trials, floor in ((16, 256, 0.75), (64, 64, 0.70)):
        name = f"montecarlo_{size}x{size}_{trials}"
        batched_s, batched = _best_of(lambda: run_monte_carlo(
            device, size, 0.25, seed=7, trials=trials,
        ))
        pointwise_s, pointwise = _best_of(lambda: run_monte_carlo(
            device, size, 0.25, seed=7, trials=trials, policy=POINTWISE,
        ))
        identical = np.array_equal(batched.samples, pointwise.samples)
        record["byte_identical"][name] = identical
        assert identical, name
        floors[name] = _row(record, lines, name, pointwise_s,
                            batched_s, floor)

    # DSE -------------------------------------------------------------
    config = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
    network = large_bank_layer()
    space = DesignSpace()
    name = f"dse_default_space_{len(space)}"
    batched_s, batched = _best_of(
        lambda: explore(config, network, space)
    )
    pointwise_s, pointwise = _best_of(
        lambda: explore(config, network, space, policy=POINTWISE)
    )
    identical = batched == pointwise
    record["byte_identical"][name] = identical
    assert identical, name
    floors[name] = _row(record, lines, name, pointwise_s, batched_s,
                        0.80)

    # Fault campaigns -------------------------------------------------
    campaigns = {
        "faults_16x16_64masks": (CampaignSpec(
            networks=("crossbar",), fault_modes=("stuck_mixed",),
            fault_rates=(0.02, 0.05, 0.1, 0.2), trials=16, seed=5,
            size=16,
        ), 0.85),
        "faults_8x8_two_modes": (CampaignSpec(
            networks=("crossbar",),
            fault_modes=("stuck_mixed", "open_cell"),
            fault_rates=(0.05, 0.1), trials=16, seed=5, size=8,
        ), 1.0),
    }
    for name, (spec, floor) in campaigns.items():
        batched_s, batched = _best_of(lambda: run_campaign(spec))
        pointwise_s, pointwise = _best_of(
            lambda: run_campaign(spec, policy=POINTWISE)
        )
        identical = batched.to_json() == pointwise.to_json()
        record["byte_identical"][name] = identical
        assert identical, name
        floors[name] = _row(record, lines, name, pointwise_s,
                            batched_s, floor)

    (REPO_ROOT / "BENCH_batch.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    write_result("batch_eval", "\n".join(lines))

    # Byte-identity is the hard gate (asserted above); the speedups are
    # no-regression floors sized for CI noise, per the module docstring.
    for name, speedup in floors.items():
        assert speedup >= record[name]["floor"], (name, record[name])
