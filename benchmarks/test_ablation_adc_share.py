"""Ablation: read-circuit dominance vs the parallelism degree.

Sec. V.C cites the ISAAC observation that ADCs take about half of the
area and energy of memristor DNN accelerators.  This ablation sweeps
the parallelism degree and measures the read-circuit share with the
breakdown model: fully-parallel designs are ADC-dominated, and sharing
read circuits is the lever that moves the share — the motivation for
exposing the parallelism degree as a first-class design variable.
"""

import pytest

from repro.arch.accelerator import Accelerator
from repro.arch.breakdown import accelerator_breakdown
from repro.config import SimConfig
from repro.nn.networks import large_bank_layer
from repro.report import format_table

BASE = SimConfig(
    crossbar_size=128, cmos_tech=45, interconnect_tech=45,
    weight_bits=8, signal_bits=8,
)
DEGREES = (0, 64, 16, 4, 1)  # 0 = fully parallel


def test_ablation_adc_share(benchmark, write_result):
    def sweep():
        shares = {}
        for degree in DEGREES:
            accelerator = Accelerator(
                BASE.replace(parallelism_degree=degree), large_bank_layer()
            )
            breakdown = accelerator_breakdown(accelerator)
            shares[degree] = (
                breakdown.area_fraction("read_circuit"),
                breakdown.energy_fraction("read_circuit"),
                breakdown.area_fraction("crossbar"),
            )
        return shares

    shares = benchmark(sweep)

    label = {0: "all-parallel"}
    write_result(
        "ablation_adc_share",
        "Ablation: read-circuit (ADC) share vs parallelism degree\n"
        + format_table(
            ["degree", "ADC area share", "ADC energy share",
             "crossbar area share"],
            [
                [label.get(d, str(d)), f"{a:.1%}", f"{e:.1%}", f"{x:.1%}"]
                for d, (a, e, x) in shares.items()
            ],
        ),
    )

    area_shares = {d: a for d, (a, _e, _x) in shares.items()}

    # The ISAAC claim at full parallelism: ADCs are the dominant area
    # consumer (about half or more).
    assert area_shares[0] > 0.40
    # Sharing monotonically reduces the ADC area share...
    ordered = [area_shares[d] for d in (0, 64, 16, 4, 1)]
    assert ordered == sorted(ordered, reverse=True)
    # ...down to a minor consumer at degree 1.
    assert area_shares[1] < 0.25
    # Crossbars themselves are never the area problem (they are dense).
    assert all(x < 0.25 for _d, (_a, _e, x) in shares.items())
