"""Ablation: signed-weight mapping and device precision.

Two mapping-level design choices (Sec. III.C.1 / III.B.2):

1. weight polarity — the differential two-crossbar mapping doubles the
   array cost of signed weights against an unsigned design;
2. device precision — storing 8-bit weights on 4-bit cells doubles the
   bit slices (and crossbars) against the 7-bit reference device, paid
   in area and shift-add merge cost.
"""

import pytest

from repro.arch.accelerator import Accelerator
from repro.config import SimConfig
from repro.nn.networks import mlp
from repro.report import format_table
from repro.units import MM2, UJ

BASE = SimConfig(
    crossbar_size=128, cmos_tech=45, interconnect_tech=45,
    weight_bits=8, signal_bits=8, parallelism_degree=16,
)
NETWORK = mlp([1024, 512], name="ablation-layer")


def test_ablation_polarity_precision(benchmark, write_result):
    def build_variants():
        return {
            "signed, 7-bit cells": Accelerator(BASE, NETWORK),
            "unsigned, 7-bit cells": Accelerator(
                BASE.replace(weight_polarity=1, weight_bits=7), NETWORK
            ),
            "signed, 4-bit cells": Accelerator(
                BASE.replace(memristor_model="RRAM-4BIT"), NETWORK
            ),
        }

    variants = benchmark(build_variants)
    summaries = {name: acc.summary() for name, acc in variants.items()}

    write_result(
        "ablation_polarity_precision",
        "Ablation: weight polarity and device precision\n"
        + format_table(
            ["variant", "crossbars", "area mm^2", "energy uJ", "error"],
            [
                [
                    name,
                    acc.total_crossbars,
                    f"{summaries[name].area / MM2:.3f}",
                    f"{summaries[name].energy_per_sample / UJ:.3f}",
                    f"{summaries[name].worst_error_rate:.2%}",
                ]
                for name, acc in variants.items()
            ],
        ),
    )

    signed = variants["signed, 7-bit cells"]
    unsigned = variants["unsigned, 7-bit cells"]
    sliced = variants["signed, 4-bit cells"]

    # Polarity: the differential mapping exactly doubles the crossbars
    # and costs commensurate area/energy.
    assert signed.total_crossbars == 2 * unsigned.total_crossbars
    assert summaries["signed, 7-bit cells"].area > (
        summaries["unsigned, 7-bit cells"].area * 1.3
    )

    # Precision: 7 magnitude bits on 4-bit cells need two slices.
    assert sliced.total_crossbars == 2 * signed.total_crossbars
    assert summaries["signed, 4-bit cells"].area > (
        summaries["signed, 7-bit cells"].area * 1.5
    )
    assert summaries["signed, 4-bit cells"].energy_per_sample > (
        summaries["signed, 7-bit cells"].energy_per_sample
    )
