"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section.  Because pytest captures stdout, each benchmark
also writes its reproduced table to ``benchmarks/results/<name>.txt``
so the artefacts survive a quiet run; the pytest-benchmark summary
carries the timing side.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Write one named result artefact (and echo it for -s runs)."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}")
        return path

    return _write
