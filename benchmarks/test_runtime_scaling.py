"""Runtime engine scaling: serial vs ``jobs=4`` vs warm-cache explore.

Times the Table IV large-bank sweep (the paper's 2048x1024 computation
bank over the full default :class:`DesignSpace`) through the three
execution modes of :mod:`repro.runtime` and records the numbers in
``BENCH_runtime.json`` at the repo root.  The one hard guarantee worth
pinning is the cache: a warm re-run must cost well under a quarter of
the cold serial sweep.  Parallel speed-up is *recorded but not
asserted* — on a single-core CI box process fan-out is legitimately
slower than the serial loop, and the equivalence tests already pin
that its results are identical.

Finding (single-core box, ~150 jobs at ~0.5 ms each): the original
``parallel_s`` > ``serial_s`` gap (0.132 s vs 0.094 s at ``jobs=4``)
was dominated by two fixed costs, not by compute: (1) spawning four
worker processes on every ``explore`` call, and (2) dispatching ~16
tiny chunks whose per-chunk pickle/IPC round-trip outweighed any load
balancing.  :func:`repro.runtime.warm_pool` now keeps one healthy pool
alive between runs (the benchmark warms it before timing, as a real
sweep driver would) and the auto-chunker uses two chunks per worker
for short sweeps.  With no second core there is still nothing to win —
the remaining gap is pure serialization overhead — so the number stays
recorded, unasserted.
"""

import json
import time
from pathlib import Path

from repro.config import SimConfig
from repro.dse import DesignSpace, explore
from repro.nn.networks import large_bank_layer
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RunMetrics
from repro.runtime.pool import RunPolicy, shutdown_warm_pool, warm_pool

BASE = SimConfig(cmos_tech=45, weight_bits=4, signal_bits=8)
SPACE = DesignSpace()
JOBS = 4
BEST_OF = 3
REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(runs, fn):
    """Minimum wall-clock over ``runs`` calls (noise-robust timing)."""
    timings = []
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def test_runtime_scaling(tmp_path, write_result):
    network = large_bank_layer()

    serial_s, serial_points = _best_of(
        BEST_OF, lambda: explore(BASE, network, SPACE)
    )
    warm_pool(JOBS)
    try:
        parallel_s, parallel_points = _best_of(
            BEST_OF, lambda: explore(BASE, network, SPACE, jobs=JOBS)
        )
    finally:
        shutdown_warm_pool()

    with ResultCache(tmp_path / "cache") as cache:
        explore(BASE, network, SPACE, cache=cache)  # cold fill
        cached_s, cached_points = _best_of(
            BEST_OF, lambda: explore(BASE, network, SPACE, cache=cache)
        )

    assert parallel_points == serial_points
    assert cached_points == serial_points
    # The headline acceptance: a warm cache turns the sweep into pure
    # lookups, far cheaper than recomputing every design point.
    assert cached_s < 0.25 * serial_s, (
        f"warm cache took {cached_s:.3f}s vs serial {serial_s:.3f}s "
        f"({cached_s / serial_s:.0%}); expected < 25%"
    )

    record = {
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "cached_s": round(cached_s, 6),
        "jobs": JOBS,
    }
    (REPO_ROOT / "BENCH_runtime.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    write_result(
        "runtime_scaling",
        f"Runtime scaling over {len(SPACE)} designs "
        f"({len(serial_points)} feasible):\n"
        f"  serial          {serial_s * 1e3:8.1f} ms\n"
        f"  parallel x{JOBS}     {parallel_s * 1e3:8.1f} ms\n"
        f"  warm cache      {cached_s * 1e3:8.1f} ms "
        f"({cached_s / serial_s:.0%} of serial)",
    )


def test_min_sweep_serial_fallback(write_result):
    """Tiny sweeps below ``min_sweep_for_parallel`` must stay serial.

    The BENCH finding above showed short sweeps are dominated by pool
    dispatch (spawn + per-chunk pickle/IPC), not compute; the engine now
    refuses to fan out when fewer than ``min_sweep_for_parallel`` jobs
    remain after the cache pass.  This regression pins the heuristic:
    the same 2-point sweep runs ``serial`` under a threshold of 8 and
    ``process`` under the permissive default of 2, and the timings land
    in ``BENCH_runtime.json`` next to the headline numbers.
    """
    network = large_bank_layer()
    tiny = DesignSpace(
        crossbar_sizes=(64,),
        parallelism_degrees=(1, 16),
        interconnect_nodes=(28,),
    )

    thresholded = RunMetrics()
    serial_s, serial_points = _best_of(
        BEST_OF,
        lambda: explore(
            BASE, network, tiny,
            policy=RunPolicy(jobs=JOBS, min_sweep_for_parallel=8),
            metrics=thresholded,
        ),
    )
    assert thresholded.mode == "serial", (
        f"2 pending jobs under min_sweep_for_parallel=8 must run "
        f"serially, got mode={thresholded.mode!r}"
    )

    permissive = RunMetrics()
    warm_pool(JOBS)
    try:
        process_s, process_points = _best_of(
            BEST_OF,
            lambda: explore(
                BASE, network, tiny,
                policy=RunPolicy(jobs=JOBS, min_sweep_for_parallel=2),
                metrics=permissive,
            ),
        )
    finally:
        shutdown_warm_pool()
    assert permissive.mode == "process"
    assert process_points == serial_points  # heuristic never changes results

    bench_path = REPO_ROOT / "BENCH_runtime.json"
    record = {}
    if bench_path.exists():
        record = json.loads(bench_path.read_text(encoding="utf-8"))
    record.update({
        "tiny_serial_s": round(serial_s, 6),
        "tiny_process_s": round(process_s, 6),
        "min_sweep_for_parallel": 8,
    })
    bench_path.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    write_result(
        "min_sweep_serial_fallback",
        f"2-point sweep, jobs={JOBS}:\n"
        f"  serial (threshold 8)   {serial_s * 1e3:8.1f} ms\n"
        f"  process (threshold 2)  {process_s * 1e3:8.1f} ms",
    )
