"""Extension experiment: heterogeneous per-bank mapping vs uniform.

The paper sweeps one crossbar size / parallelism degree for the whole
accelerator; since banks are independent digital islands, each layer
can get its own.  This benchmark quantifies the benefit on a lopsided
network (a large layer cascaded into a small classifier head): the
per-bank optimum must dominate the best uniform design on every
decomposable metric.
"""

import pytest

from repro.config import SimConfig
from repro.dse.heterogeneous import optimise_heterogeneous, uniform_best
from repro.nn.networks import mlp
from repro.report import format_table
from repro.units import MM2, UJ

BASE = SimConfig(cmos_tech=45, interconnect_tech=45, weight_bits=4,
                 signal_bits=8)
NETWORK = mlp([4096, 1024, 128, 10], name="lopsided-classifier")
SIZES = (32, 64, 128, 256, 512)
DEGREES = (1, 16, 256)


def test_extension_heterogeneous(benchmark, write_result):
    def optimise_both():
        return {
            metric: (
                optimise_heterogeneous(
                    BASE, NETWORK, metric=metric,
                    crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
                ),
                uniform_best(
                    BASE, NETWORK, metric=metric,
                    crossbar_sizes=SIZES, parallelism_degrees=DEGREES,
                ),
            )
            for metric in ("area", "energy")
        }

    results = benchmark(optimise_both)

    rows = []
    for metric, (hetero, uniform) in results.items():
        h_value = hetero.area if metric == "area" else hetero.energy
        u_value = uniform.area if metric == "area" else uniform.energy
        unit = MM2 if metric == "area" else UJ
        rows.append([
            metric,
            f"{u_value / unit:.3f}",
            f"{h_value / unit:.3f}",
            f"{(1 - h_value / u_value):.1%}",
            "/".join(str(c.crossbar_size) for c in hetero.choices),
        ])
    write_result(
        "extension_heterogeneous",
        "Extension: heterogeneous per-bank mapping vs best uniform "
        "(4096-1024-128-10 MLP)\n"
        + format_table(
            ["metric", "uniform", "heterogeneous", "saving",
             "per-bank xbar sizes"],
            rows,
        ),
    )

    hetero_area, uniform_area = results["area"]
    hetero_energy, uniform_energy = results["energy"]

    # Dominance is guaranteed; the lopsided shape makes it strict.
    assert hetero_area.area < uniform_area.area
    assert hetero_energy.energy <= uniform_energy.energy * (1 + 1e-12)
    # The banks actually diversify.
    assert len({c.crossbar_size for c in hetero_area.choices}) > 1
