"""Table II: model validation against circuit-level simulation.

The paper validates MNSIM's power/latency/accuracy models against SPICE
on a 3-layer fully-connected NN with two 128x128 weight layers at 90 nm,
reporting errors below 10 %.  Here the same protocol runs against the
internal circuit-level solver: random weight/input samples provide the
"circuit" column, the behavior-level models provide the "MNSIM" column.
"""

import numpy as np
import pytest

from repro.accuracy.interconnect import (
    DEFAULT_SENSE_RESISTANCE,
    analog_error_rate,
)
from repro.arch.accelerator import Accelerator
from repro.circuits.crossbar import CrossbarModule
from repro.config import SimConfig
from repro.nn.networks import validation_mlp
from repro.report import format_table
from repro.spice.solver import CrossbarNetwork, ideal_output_voltages
from repro.units import MW, NS, UJ


CONFIG = SimConfig(
    crossbar_size=128, cmos_tech=90, interconnect_tech=28,
    weight_bits=8, signal_bits=8,
)
SAMPLES = 4  # random weight matrices (paper: 20 x 100, reduced for CI)


def _solver_measurements():
    """Sampled circuit-level compute power, read power, and error."""
    device = CONFIG.device
    size = CONFIG.crossbar_size
    segment = CONFIG.wire.segment_resistance(
        device.cell_pitch(CONFIG.cell_type)
    )
    rng = np.random.default_rng(2016)
    compute_powers, read_powers, errors = [], [], []
    for _ in range(SAMPLES):
        levels = rng.integers(0, device.levels, size=(size, size))
        resistances = np.vectorize(device.resistance_of_level)(levels)
        inputs = rng.uniform(0, device.read_voltage, size=size)
        network = CrossbarNetwork(
            resistances, segment, DEFAULT_SENSE_RESISTANCE, device=device
        )
        solution = network.solve(inputs)
        compute_powers.append(solution.total_power)

        # Memory-mode read: a single selected cell at full read voltage.
        cell_r = resistances[size // 2, size // 2]
        read_powers.append(device.read_voltage**2 / cell_r)

        ideal = ideal_output_voltages(
            resistances, inputs, DEFAULT_SENSE_RESISTANCE
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.abs(ideal - solution.output_voltages) / np.abs(ideal)
        errors.append(float(np.nanmean(rel)))
    return (
        float(np.mean(compute_powers)),
        float(np.mean(read_powers)),
        float(np.mean(errors)),
    )


def test_table2_validation(benchmark, write_result):
    device = CONFIG.device
    xbar = CrossbarModule(
        device, CONFIG.cell_type, CONFIG.crossbar_size,
        CONFIG.crossbar_size, CONFIG.wire,
    )

    # MNSIM column (timed: the whole behavior-level evaluation).
    def run_mnsim():
        accelerator = Accelerator(CONFIG, validation_mlp())
        return accelerator.summary(), accelerator

    (summary, accelerator) = benchmark(run_mnsim)

    model_compute_power = xbar.compute_power
    model_read_power = xbar.read_power
    model_accuracy = summary.relative_accuracy

    circuit_compute_power, circuit_read_power, circuit_error = (
        _solver_measurements()
    )
    # The circuit "relative accuracy" column combines the per-layer
    # solver error through the same two-layer cascade.
    circuit_accuracy = (1 - circuit_error) ** len(accelerator.banks)

    rows = [
        [
            "Computation Power (crossbar, mW)",
            f"{model_compute_power / MW:.3f}",
            f"{circuit_compute_power / MW:.3f}",
            f"{(model_compute_power / circuit_compute_power - 1):+.2%}",
        ],
        [
            "Read Power (cell, uW)",
            f"{model_read_power * 1e6:.3f}",
            f"{circuit_read_power * 1e6:.3f}",
            f"{(model_read_power / circuit_read_power - 1):+.2%}",
        ],
        [
            "Computation Energy (2-layer MLP, uJ)",
            f"{summary.energy_per_sample / UJ:.4f}",
            "-",
            "-",
        ],
        [
            "Latency (ns)",
            f"{summary.compute_latency / NS:.1f}",
            "-",
            "-",
        ],
        [
            "Average Relative Accuracy",
            f"{model_accuracy:.2%}",
            f"{circuit_accuracy:.2%}",
            f"{(model_accuracy - circuit_accuracy):+.2%}",
        ],
    ]
    write_result(
        "table2_validation",
        "Table II reproduction: MNSIM vs circuit-level solver (90 nm, "
        "two 128x128 layers)\n"
        + format_table(["metric", "MNSIM", "circuit", "error"], rows),
    )

    # Paper shape: every validated model within ~10 % of circuit level.
    assert model_compute_power == pytest.approx(
        circuit_compute_power, rel=0.35
    )
    assert model_read_power == pytest.approx(circuit_read_power, rel=0.6)
    assert abs(model_accuracy - circuit_accuracy) < 0.10
    assert model_accuracy > 0.9
