"""Fig. 5: output-voltage error-rate curves vs crossbar size per
interconnect node, analytic fit against circuit-level points.

The paper's scattered points are SPICE solves and the lines are the
Eq.-11 fit with RMSE < 0.01; here the points come from the internal
solver and the line from the fitted analytic model.
"""

import pytest

from repro.accuracy.fitting import fit_wire_term
from repro.accuracy.interconnect import analog_error_rate
from repro.report import format_table
from repro.tech import get_interconnect_node, get_memristor_model
from repro.tech.memristor import CellType

WIRE_NODES = (18, 28, 45, 90)
SIZES = (8, 16, 32, 64)


def test_fig5_error_fit(benchmark, write_result):
    device = get_memristor_model("RRAM")
    pitch = device.cell_pitch(CellType.ONE_T_ONE_R)
    segments = {
        node: get_interconnect_node(node).segment_resistance(pitch)
        for node in WIRE_NODES
    }

    fit = benchmark.pedantic(
        lambda: fit_wire_term(device, tuple(segments.values()), sizes=SIZES),
        rounds=1, iterations=1,
    )

    rows = []
    curves = {}
    for point in fit.points:
        node = min(
            segments, key=lambda n: abs(segments[n] - point.segment_resistance)
        )
        rows.append([
            f"{node} nm",
            point.size,
            f"{point.solver_error:+.4f}",
            f"{point.model_error:+.4f}",
            f"{point.model_error - point.solver_error:+.5f}",
        ])
        curves.setdefault(f"{node}nm", []).append(
            (point.size, point.model_error)
        )

    from repro.report_plot import line_plot

    chart = line_plot(
        curves, width=56, height=16, x_label="crossbar size",
        y_label="signed error rate", logx=True,
    )
    write_result(
        "fig5_error_fit",
        "Fig. 5 reproduction: error-rate fit vs circuit-level points\n"
        f"fitted kappa={fit.kappa:.4f}, beta={fit.beta:.4f}, "
        f"RMSE={fit.rmse:.5f} (paper bound < 0.01)\n"
        + format_table(
            ["wire node", "size", "solver eps", "model eps", "residual"],
            rows,
        )
        + "\n\n" + chart,
    )

    # Paper shape 1: the fit RMSE beats the 0.01 bound.
    assert fit.rmse < 0.01
    assert fit.max_abs_residual < 0.01

    # Paper shape 2: at a fixed size, error grows as wires shrink
    # (Fig. 5's curve ordering 18 nm > 28 nm > 45 nm).
    size = 64
    magnitudes = [
        analog_error_rate(size, size, segments[node], device)
        for node in (18, 28, 45)
    ]
    assert magnitudes[0] > magnitudes[1] > magnitudes[2]

    # Paper shape 3: along a resistive wire node the error rises with
    # crossbar size on the large-size branch.
    big_wire = segments[18]
    curve = [
        analog_error_rate(s, s, big_wire, device) for s in (64, 128, 256)
    ]
    assert curve == sorted(curve)
