"""Table VI: design-space exploration of the VGG-16 CNN case study.

The paper relaxes the error constraint to 50 %, widens the interconnect
range to 90 nm, and reports the optimum per target with latency defined
per pipeline cycle (the slowest computation bank).
"""

import pytest

from repro.config import SimConfig
from repro.dse import DesignSpace, explore, optimal_table
from repro.nn.networks import vgg16
from repro.report import format_table
from repro.units import MJ, MM2, US

BASE = SimConfig(cmos_tech=45, weight_bits=8, signal_bits=8)
SPACE = DesignSpace(
    crossbar_sizes=(32, 64, 128, 256, 512),
    parallelism_degrees=(1, 4, 16, 64, 256),
    interconnect_nodes=(18, 22, 28, 36, 45, 65, 90),
)
ERROR_BOUND = 0.50


def test_table6_vgg16_dse(benchmark, write_result):
    network = vgg16()

    points = benchmark(
        lambda: explore(BASE, network, SPACE, max_error_rate=ERROR_BOUND)
    )
    assert points
    best = optimal_table(points)

    rows = []
    for metric, point in best.items():
        s = point.summary
        rows.append([
            metric,
            f"{s.area / MM2:.1f}",
            f"{s.energy_per_sample / MJ:.3f}",
            f"{s.pipeline_cycle / US:.4f}",
            f"{s.worst_error_rate:.2%}",
            f"{s.power:.1f}",
            point.crossbar_size,
            point.interconnect_tech,
            point.parallelism_degree,
        ])
    write_result(
        "table6_vgg16_dse",
        f"Table VI reproduction: VGG-16, {len(SPACE)} designs, "
        f"{len(points)} feasible (error <= {ERROR_BOUND:.0%})\n"
        + format_table(
            ["target", "area mm^2", "energy mJ", "cycle us", "error",
             "power W", "xbar", "wire nm", "p"],
            rows,
        ),
    )

    area_opt, energy_opt = best["area"], best["energy"]
    latency_opt, accuracy_opt = best["latency"], best["accuracy"]

    # Paper shapes for the CNN case:
    # 1. Area-optimal reads sequentially; energy/latency-optimal designs
    #    use high parallelism and are orders of magnitude faster.
    assert area_opt.parallelism_degree <= 4
    assert energy_opt.parallelism_degree >= 64
    assert latency_opt.summary.pipeline_cycle < (
        area_opt.summary.pipeline_cycle / 10
    )
    # 2. Accuracy-optimal uses smaller crossbars than the area optimum
    #    (error accumulation over 16 layers pushes toward the accurate
    #    middle sizes).
    assert accuracy_opt.crossbar_size < area_opt.crossbar_size
    assert accuracy_opt.error_rate < area_opt.error_rate
    # 3. Multi-layer error accumulation: the CNN's worst error rates
    #    exceed the single-layer case at the same bound.
    assert area_opt.error_rate > 0.05
